//! A small Rust lexer: just enough tokenization to walk real source
//! without being fooled by strings, raw strings, char/byte literals,
//! lifetimes, or (nested) block comments.
//!
//! The lexer is intentionally not a parser: it produces a flat token
//! stream with byte offsets and 1-based line/column positions. Rules match
//! on short token sequences (`Instant :: now`, `. unwrap ( )`), which is
//! robust against formatting while never matching occurrences inside
//! literals or comments — the classic grep failure mode this crate exists
//! to eliminate.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `unwrap`).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `2e9`).
    Float,
    /// `"..."` or `b"..."` string literal (escapes resolved lexically,
    /// not semantically).
    Str,
    /// `r"..."`/`r#"..."#`/`br#"..."#` raw string literal.
    RawStr,
    /// `'x'` or `b'x'` char/byte literal.
    Char,
    /// Lifetime (`'a`) or loop label (`'outer`).
    Lifetime,
    /// `// ...` line comment (doc comments included).
    LineComment,
    /// `/* ... */` block comment, nesting handled.
    BlockComment,
    /// Any single punctuation byte (`.`, `(`, `::` arrives as two `:`).
    Punct,
}

/// One token: kind, the source slice, and its position.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl<'a> Tok<'a> {
    /// Whether this token is a comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this token participates in code matching (not a comment).
    pub fn is_code(&self) -> bool {
        !self.is_comment()
    }
}

/// Tokenizes `src`. Invalid constructs (unterminated strings/comments)
/// never panic: the offending token simply extends to end of input, which
/// is the right behaviour for a linter that must survive arbitrary files.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer { src: src.as_bytes(), text: src, pos: 0, line: 1, col: 1 }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let (line, col, start) = (self.line, self.col, self.pos);
            let b = self.src[self.pos];
            let kind = match b {
                b if (b as char).is_whitespace() => {
                    self.bump();
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' | b'c' => match self.raw_or_byte_prefix() {
                    Some(kind) => kind,
                    None => self.ident(),
                },
                b if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => {
                    self.bump();
                    TokKind::Punct
                }
            };
            out.push(Tok { kind, text: &self.text[start..self.pos], line, col });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        let b = self.src[self.pos];
        // Column counts bytes; UTF-8 continuation bytes (0b10xxxxxx) do not
        // advance the column so multi-byte chars count once.
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.src.len() {
                self.bump();
            }
        }
    }

    fn line_comment(&mut self) -> TokKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.bump();
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        self.bump_n(2); // consume "/*"
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        TokKind::BlockComment
    }

    /// Consumes a `"..."` string starting at the opening quote.
    fn string(&mut self) -> TokKind {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokKind::Str
    }

    /// At a `'`: decide char literal vs lifetime/label.
    fn char_or_lifetime(&mut self) -> TokKind {
        // 'a' / '\n' / '\u{1F600}' are char literals; 'a (no closing
        // quote right after one ident-ish char run) is a lifetime.
        // Escape after the quote always means a char literal.
        if self.peek(1) == Some(b'\\') {
            self.bump(); // '
            while self.pos < self.src.len() {
                match self.src[self.pos] {
                    b'\\' => self.bump_n(2),
                    b'\'' => {
                        self.bump();
                        break;
                    }
                    _ => self.bump(),
                }
            }
            return TokKind::Char;
        }
        // '<one char>' — any single (possibly multibyte) char followed by
        // a closing quote is a char literal: 'x', '<', '✓'. A quote NOT
        // following one char starts a lifetime or label.
        if let Some(b1) = self.peek(1) {
            if b1 != b'\'' {
                let char_len = match b1 {
                    b if b < 0x80 => 1,
                    b if b < 0xE0 => 2,
                    b if b < 0xF0 => 3,
                    _ => 4,
                };
                if self.peek(1 + char_len) == Some(b'\'') {
                    self.bump_n(char_len + 2);
                    return TokKind::Char;
                }
            }
        }
        // Lifetime/label: quote + ident run with no closing quote.
        let mut i = self.pos + 1;
        while i < self.src.len()
            && (self.src[i].is_ascii_alphanumeric() || self.src[i] == b'_' || self.src[i] >= 0x80)
        {
            i += 1;
        }
        if i == self.pos + 1 {
            // Lone quote (e.g. inside macro garbage) — treat as punct.
            self.bump();
            TokKind::Punct
        } else {
            let n = i - self.pos;
            self.bump_n(n);
            TokKind::Lifetime
        }
    }

    /// At `r`, `b`, or `c`: raw string (`r"`, `r#`), byte string (`b"`),
    /// byte char (`b'`), raw byte string (`br`), C string (`c"`), raw C
    /// string (`cr"`). A raw identifier (`r#type`) is consumed as a single
    /// [`TokKind::Ident`] token. Returns `None` when it is just an ordinary
    /// identifier starting with r/b/c.
    fn raw_or_byte_prefix(&mut self) -> Option<TokKind> {
        let b0 = self.src[self.pos];
        let (prefix_len, raw) = match (b0, self.peek(1), self.peek(2)) {
            (b'r', Some(b'"'), _) | (b'r', Some(b'#'), _) => (1, true),
            (b'b' | b'c', Some(b'r'), Some(b'"')) | (b'b' | b'c', Some(b'r'), Some(b'#')) => {
                (2, true)
            }
            (b'b' | b'c', Some(b'"'), _) => (1, false),
            (b'b', Some(b'\''), _) => {
                // Byte char literal: b'x' or b'\n'
                self.bump(); // b
                self.char_or_lifetime();
                return Some(TokKind::Char);
            }
            _ => return None,
        };
        if raw {
            // Count hashes after the prefix.
            let mut hashes = 0usize;
            while self.peek(prefix_len + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(prefix_len + hashes) != Some(b'"') {
                // `r#foo`: a raw identifier, lexed as ONE Ident token whose
                // text keeps the `r#` prefix (`r#type` never equals the
                // keyword `type` in rule patterns, and never splits into
                // `r` `#` `type` where the trailing part could collide
                // with a pattern atom). `br#`/`cr#` without a quote have
                // no raw-ident form; fall through to a plain ident.
                if b0 == b'r' && hashes == 1 {
                    let next = self.peek(2);
                    if next.is_some_and(|b| {
                        b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
                    }) {
                        self.bump_n(2); // r#
                        self.ident();
                        return Some(TokKind::Ident);
                    }
                }
                return None; // not a raw string after all
            }
            self.bump_n(prefix_len + hashes + 1);
            // Scan to closing quote followed by `hashes` hashes.
            'outer: while self.pos < self.src.len() {
                if self.src[self.pos] == b'"' {
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            self.bump();
                            continue 'outer;
                        }
                    }
                    self.bump_n(1 + hashes);
                    break;
                }
                self.bump();
            }
            Some(TokKind::RawStr)
        } else {
            self.bump(); // b
            self.string();
            Some(TokKind::Str)
        }
    }

    fn ident(&mut self) -> TokKind {
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric()
                || self.src[self.pos] == b'_'
                || self.src[self.pos] >= 0x80)
        {
            self.bump();
        }
        TokKind::Ident
    }

    fn number(&mut self) -> TokKind {
        let mut kind = TokKind::Int;
        // Hex/octal/binary prefixes: consume the run and any suffix.
        if self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.bump_n(2);
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.bump();
            }
            return TokKind::Int;
        }
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'_')
        {
            self.bump();
        }
        // Fractional part: a dot followed by a digit (not `..` or method
        // call `1.max(2)`).
        if self.pos < self.src.len()
            && self.src[self.pos] == b'.'
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            kind = TokKind::Float;
            self.bump();
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'_')
            {
                self.bump();
            }
        }
        // Exponent.
        if self.pos < self.src.len()
            && matches!(self.src[self.pos], b'e' | b'E')
            && (self.peek(1).is_some_and(|b| b.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|b| b.is_ascii_digit())))
        {
            kind = TokKind::Float;
            self.bump();
            if matches!(self.src[self.pos], b'+' | b'-') {
                self.bump();
            }
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.bump();
            }
        }
        // Type suffix (u64, f32, usize...).
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.bump();
        }
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = kinds("fn main() { let x = 1.5; }");
        assert!(toks.contains(&(TokKind::Ident, "fn")));
        assert!(toks.contains(&(TokKind::Float, "1.5")));
        assert!(toks.contains(&(TokKind::Punct, "{")));
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "Instant::now() .unwrap()";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let s = r#"quote " inside"#; x"##);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::RawStr));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "x"));
    }

    #[test]
    fn byte_char_is_not_lifetime() {
        let toks = kinds("self.expect(b'<')?");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && *t == "b'<'"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 3);
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "code"));
    }

    #[test]
    fn escaped_quote_in_char() {
        let toks = kinds(r"let q = '\''; let n = '\n'; ok");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "ok"));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn line_comment_keeps_text() {
        let toks = lex("x // vmp-lint: allow(D2)\ny");
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert!(toks[1].text.contains("allow(D2)"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"raw", "'", "b'", "c\"abc", "r#"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn raw_identifiers_are_single_idents() {
        let toks = kinds("let r#type = r#fn + r#match;");
        assert!(toks.contains(&(TokKind::Ident, "r#type")));
        assert!(toks.contains(&(TokKind::Ident, "r#fn")));
        assert!(toks.contains(&(TokKind::Ident, "r#match")));
        // The raw prefix must not split: no bare `type`/`fn` atoms that a
        // rule pattern could accidentally match.
        assert!(!toks.contains(&(TokKind::Ident, "type")));
        assert!(!toks.contains(&(TokKind::Ident, "fn")));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Punct && *t == "#"));
    }

    #[test]
    fn raw_ident_with_string_content_hides_nothing() {
        // `r#unwrap` is an identifier, not a call to unwrap; and a raw
        // string right after a raw ident still lexes as a string.
        let toks = kinds(r##"let r#unwrap = r"text"; x"##);
        assert!(toks.contains(&(TokKind::Ident, "r#unwrap")));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::RawStr));
        assert!(toks.contains(&(TokKind::Ident, "x")));
    }

    #[test]
    fn byte_and_c_string_literals() {
        let toks = kinds(r#"let a = b"bytes"; let b = c"cstr"; y"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && *t == "b\"bytes\""));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && *t == "c\"cstr\""));
        assert!(toks.contains(&(TokKind::Ident, "y")));
        // Code inside byte/C strings never leaks as idents.
        let toks = kinds(r#"let s = c"Instant::now() .unwrap()"; ok"#);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "unwrap"));
        assert!(toks.contains(&(TokKind::Ident, "ok")));
    }

    #[test]
    fn raw_byte_and_raw_c_strings() {
        let toks = kinds(r###"let a = br#"raw " bytes"#; let b = cr#"raw " c"#; z"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::RawStr).count(), 2);
        assert!(toks.contains(&(TokKind::Ident, "z")));
    }

    #[test]
    fn static_lifetime_in_generic_position() {
        let toks = kinds("fn f<T: Into<&'static str>>() -> &'static [u8] { g::<'static>() }");
        assert_eq!(
            toks.iter().filter(|(k, t)| *k == TokKind::Lifetime && *t == "'static").count(),
            3
        );
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn plain_b_c_r_idents_are_untouched() {
        let toks = kinds("let b = c + r; b.f(c)");
        for name in ["b", "c", "r"] {
            assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == name));
        }
    }
}

//! The monitoring library: turning a session outcome into a §3 view record.
//!
//! Conviva's library reports per-view metadata from inside the player; here
//! the equivalent step stamps the session outcome with client context and
//! the *manifest URL* (whose extension is the only protocol signal that
//! survives into analytics, per Table 1).

use crate::player::SessionOutcome;
use vmp_core::content::ContentClass;
use vmp_core::device::DeviceModel;
use vmp_core::geo::{ConnectionType, Isp, Region};
use vmp_core::ids::{PublisherId, SessionId, VideoId};
use vmp_core::sdk::{PlayerBuild, SdkKind, SdkVersion};
use vmp_core::time::SnapshotId;
use vmp_core::units::Kbps;
use vmp_core::view::{OwnershipFlag, PlayerIdentity, ViewRecord};

/// Client-side context for one view.
#[derive(Debug, Clone)]
pub struct ClientContext {
    /// Playback device.
    pub device: DeviceModel,
    /// SDK version for app platforms (browser views get a user-agent).
    pub sdk_version: SdkVersion,
    /// Client region.
    pub region: Region,
    /// Client ISP.
    pub isp: Isp,
    /// Access network type.
    pub connection: ConnectionType,
}

impl ClientContext {
    /// The player identity string/struct reported in telemetry.
    pub fn player_identity(&self) -> PlayerIdentity {
        match self.device {
            DeviceModel::DesktopBrowser(tech) => PlayerIdentity::UserAgent(format!(
                "Mozilla/5.0 (compatible; {}-player/{})",
                tech.label().to_ascii_lowercase(),
                self.sdk_version
            )),
            DeviceModel::MobileBrowser => {
                PlayerIdentity::UserAgent(format!("Mozilla/5.0 (Mobile; html5-player/{})", self.sdk_version))
            }
            other => PlayerIdentity::Sdk(PlayerBuild::new(SdkKind::for_device(other), self.sdk_version)),
        }
    }
}

/// Builder assembling the full [`ViewRecord`].
#[derive(Debug, Clone)]
pub struct TelemetryBuilder {
    /// Session identifier.
    pub session: SessionId,
    /// Snapshot window the view falls in.
    pub snapshot: SnapshotId,
    /// Publisher serving the view.
    pub publisher: PublisherId,
    /// Video ID (the *serving* publisher's ID for the title).
    pub video: VideoId,
    /// Manifest URL fetched by the player.
    pub manifest_url: String,
    /// Ladder advertised in the manifest.
    pub available_bitrates: Vec<Kbps>,
    /// Live or VoD.
    pub class: ContentClass,
    /// Owned or syndicated.
    pub ownership: OwnershipFlag,
}

impl TelemetryBuilder {
    /// Stamps the outcome with context into a complete record.
    pub fn build(&self, client: &ClientContext, outcome: &SessionOutcome) -> ViewRecord {
        ViewRecord {
            session: self.session,
            snapshot: self.snapshot,
            publisher: self.publisher,
            video: self.video,
            manifest_url: self.manifest_url.clone(),
            device: client.device,
            os: client.device.os(),
            player: client.player_identity(),
            cdns: outcome.cdns.iter().map(|c| c.id()).collect(),
            available_bitrates: self.available_bitrates.clone(),
            viewing_time: outcome.qoe.played,
            class: self.class,
            ownership: self.ownership,
            region: client.region,
            isp: client.isp,
            connection: client.connection,
            qoe: outcome.qoe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_core::cdn::CdnName;
    use vmp_core::platform::BrowserTech;
    use vmp_core::qoe::QoeSummary;
    use vmp_core::units::Seconds;

    fn outcome() -> SessionOutcome {
        SessionOutcome {
            qoe: QoeSummary {
                avg_bitrate: Kbps(2400),
                played: Seconds(1800.0),
                rebuffer_time: Seconds(12.0),
                startup_delay: Seconds(1.1),
                bitrate_switches: 4,
                cdn_switches: 1,
            },
            bitrates_used: vec![Kbps(1600), Kbps(3200)],
            cdns: vec![CdnName::A, CdnName::C],
            downloaded: Seconds(1800.0),
            exit: crate::player::ExitCause::Completed,
            retries: 0,
            timeouts: 0,
            end_clock: Seconds(1900.0),
        }
    }

    fn builder() -> TelemetryBuilder {
        TelemetryBuilder {
            session: SessionId::new(5),
            snapshot: SnapshotId::LAST,
            publisher: PublisherId::new(3),
            video: VideoId::new(10),
            manifest_url: "https://edge.cdn-a.example.net/p0003/v00000a/master.m3u8".into(),
            available_bitrates: vec![Kbps(400), Kbps(1600), Kbps(3200)],
            class: ContentClass::Vod,
            ownership: OwnershipFlag::Owned,
        }
    }

    #[test]
    fn record_carries_session_qoe_and_cdns() {
        let client = ClientContext {
            device: DeviceModel::Roku,
            sdk_version: SdkVersion::new(9, 1),
            region: Region::UsOther,
            isp: Isp::Z,
            connection: ConnectionType::Wired,
        };
        let record = builder().build(&client, &outcome());
        assert_eq!(record.viewing_time, Seconds(1800.0));
        assert_eq!(record.cdns.len(), 2);
        assert_eq!(record.cdns[0], CdnName::A.id());
        assert!((record.qoe.rebuffer_ratio() - 12.0 / 1812.0).abs() < 1e-9);
        match record.player {
            PlayerIdentity::Sdk(build) => {
                assert_eq!(build.sdk, SdkKind::RokuSceneGraph);
                assert_eq!(build.version, SdkVersion::new(9, 1));
            }
            _ => panic!("app platform must report an SDK"),
        }
    }

    #[test]
    fn browser_views_report_user_agent() {
        let client = ClientContext {
            device: DeviceModel::DesktopBrowser(BrowserTech::Flash),
            sdk_version: SdkVersion::new(21, 0),
            region: Region::Europe,
            isp: Isp::Y,
            connection: ConnectionType::Wifi,
        };
        let record = builder().build(&client, &outcome());
        match &record.player {
            PlayerIdentity::UserAgent(ua) => assert!(ua.contains("flash-player/21.0"), "{ua}"),
            _ => panic!("browser must report a user agent"),
        }
        assert_eq!(record.os, DeviceModel::DesktopBrowser(BrowserTech::Flash).os());
    }

    #[test]
    fn protocol_recoverable_from_url_only() {
        let client = ClientContext {
            device: DeviceModel::IPad,
            sdk_version: SdkVersion::new(11, 2),
            region: Region::California,
            isp: Isp::X,
            connection: ConnectionType::Wifi,
        };
        let record = builder().build(&client, &outcome());
        assert_eq!(
            vmp_manifest::classify(&record.manifest_url),
            Some(vmp_core::protocol::StreamingProtocol::Hls)
        );
    }
}

//! Live-event playback state: the sliding window and the surge-protected
//! delivery path.
//!
//! A live event changes the shape of the workload in three correlated ways
//! that VoD never exhibits:
//!
//! 1. **Everyone wants the same bytes.** Chunk keys derive from the event's
//!    *media sequence* (the `#EXT-X-MEDIA-SEQUENCE` counter in the sliding
//!    live manifest), not from a per-session chunk index, so ten thousand
//!    viewers at the live edge request the *same* chunk in the same few
//!    seconds — synchronized request phases.
//! 2. **The live edge paces everyone.** A chunk does not exist until the
//!    encoder publishes it; a player that drains its buffer waits at the
//!    live edge for the next publish instead of racing ahead.
//! 3. **Arrivals are correlated.** Viewers join in a storm around the
//!    event start (modeled in `vmp-synth`), not as a memoryless trickle.
//!
//! [`LiveWindow`] carries the event timeline into the player, and
//! [`surge_infrastructure_fn`] wraps the standard per-CDN infrastructure
//! with the overload-protection layer from `vmp-cdn`: admission control
//! ([`EdgeCapacity`]), origin-shield coalescing ([`OriginShield`]) — the
//! shared retry budget is wired separately through
//! [`MultiCdnContext::retry_budget`](crate::player::MultiCdnContext).

use std::collections::BTreeMap;
use vmp_cdn::capacity::EdgeCapacity;
use vmp_cdn::edge::{CacheOutcome, EdgeCluster};
use vmp_cdn::error::FetchError;
use vmp_cdn::routing::Router;
use vmp_cdn::shield::OriginShield;
use vmp_core::cdn::CdnName;
use vmp_core::units::{Kbps, Seconds};
use vmp_faults::FaultInjector;
use vmp_manifest::hls::{write_live_media, MediaPlaylist};
use vmp_manifest::types::ManifestError;
use vmp_manifest::types::MediaPresentation;
use vmp_stats::Rng;

use crate::player::{ChunkRequest, ChunkServe};

/// The shared timeline of one live event: when it starts, how fast the
/// encoder publishes, and how many segments the manifest window advertises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveWindow {
    /// Virtual-clock time the event (and media sequence 0) starts.
    pub event_start: Seconds,
    /// Publish cadence: one segment every `chunk_duration`.
    pub chunk_duration: Seconds,
    /// Segments advertised by the sliding manifest window.
    pub window_size: u32,
    /// Distinguishes this event's chunk keys from every other content in
    /// the shared edge caches.
    pub salt: u64,
}

impl LiveWindow {
    /// A window for an event starting at `event_start` with a 4-second
    /// cadence and a 6-segment manifest window.
    pub fn new(event_start: Seconds, salt: u64) -> LiveWindow {
        LiveWindow { event_start, chunk_duration: Seconds(4.0), window_size: 6, salt }
    }

    /// The live-edge media sequence at `clock`: the segment currently
    /// being produced, which a viewer joining now targets first (waiting
    /// out its [`publish_time`](LiveWindow::publish_time) if the encoder
    /// has not finished it). Before the event starts this is sequence 0.
    pub fn sequence_at(&self, clock: Seconds) -> u64 {
        let elapsed = clock.0 - self.event_start.0;
        if elapsed <= 0.0 {
            0
        } else {
            (elapsed / self.chunk_duration.0) as u64
        }
    }

    /// Oldest media sequence still inside the sliding manifest window at
    /// `clock`. A viewer who falls further behind than this has slid out of
    /// the window and must jump forward.
    pub fn oldest_at(&self, clock: Seconds) -> u64 {
        self.sequence_at(clock).saturating_sub(self.window_size.max(1) as u64 - 1)
    }

    /// When segment `sequence` becomes available to fetch.
    pub fn publish_time(&self, sequence: u64) -> Seconds {
        Seconds(self.event_start.0 + (sequence + 1) as f64 * self.chunk_duration.0)
    }

    /// The chunk key every viewer at `sequence` requests for `bitrate` —
    /// shared across sessions, which is what makes live request phases
    /// synchronized at the edge.
    pub fn chunk_key(&self, sequence: u64, bitrate: Kbps) -> u64 {
        sequence ^ (bitrate.0 as u64) << 40 ^ self.salt
    }

    /// Renders the sliding live manifest a viewer polling at `clock` sees:
    /// the newest `window_size` published segments with
    /// `#EXT-X-MEDIA-SEQUENCE` advanced accordingly. Round-trips through
    /// the HLS writer and parser, so the error is surfaced rather than
    /// assumed away.
    pub fn manifest_at(
        &self,
        presentation: &MediaPresentation,
        rung_index: usize,
        clock: Seconds,
    ) -> Result<MediaPlaylist, ManifestError> {
        let rungs = presentation.ladder.rungs();
        let rung = rungs[rung_index.min(rungs.len().saturating_sub(1))];
        let text =
            write_live_media(presentation, &rung, self.oldest_at(clock), self.window_size as usize);
        vmp_manifest::hls::parse_media(&text)
    }
}

/// The per-CDN overload-protection state shared by every session in a
/// surge cohort: admission control in front of the edges and an origin
/// shield behind them.
#[derive(Debug)]
pub struct SurgeLayer {
    /// Admission control per CDN.
    pub capacity: BTreeMap<CdnName, EdgeCapacity>,
    /// Origin shield per CDN.
    pub shields: BTreeMap<CdnName, OriginShield>,
}

impl SurgeLayer {
    /// Total requests shed across all CDNs.
    pub fn total_shed(&self) -> u64 {
        self.capacity.values().map(|c| c.shed()).sum()
    }

    /// Total coalesced origin requests across all CDNs.
    pub fn total_coalesced(&self) -> u64 {
        self.shields.values().map(|s| s.coalesced()).sum()
    }
}

/// Builds a [`MultiCdnContext::infrastructure`](crate::player::MultiCdnContext)
/// closure for a surge cohort: the standard fault-aware delivery path of
/// [`infrastructure_fn`](crate::player::infrastructure_fn) with the
/// overload-protection layer threaded in. Order per request: scheduled
/// outage → pending cache flushes → **admission control** (over-capacity
/// requests shed with [`FetchError::Shed`], new joins first) → anycast
/// routing → **origin shield** (a miss that races an in-flight origin
/// fetch coalesces instead of hitting the origin) → edge fetch → origin
/// error burst → degraded-throughput multiplier.
///
/// RNG discipline matches the base closure: the surge layer itself never
/// draws from the RNG, so a cohort with generous capacity and no faults
/// consumes exactly the stream the unprotected path would.
pub fn surge_infrastructure_fn<'a>(
    routers: &'a BTreeMap<CdnName, Router>,
    edges: &'a mut BTreeMap<CdnName, EdgeCluster>,
    region_index: usize,
    faults: Option<&'a FaultInjector>,
    surge: &'a mut SurgeLayer,
) -> impl FnMut(&ChunkRequest, &mut Rng) -> Result<ChunkServe, FetchError> + 'a {
    let mut last_flush: BTreeMap<CdnName, Seconds> = BTreeMap::new();
    move |req, rng| {
        let cdn = req.cdn;
        let region = Some(region_index);
        if let Some(fi) = faults {
            if fi.outage_in(cdn, region, req.clock) {
                return Err(FetchError::Outage { cdn });
            }
            let since = last_flush.get(&cdn).copied().unwrap_or(Seconds::ZERO);
            if fi.cache_flush_between_in(cdn, region, since, req.clock) {
                if let Some(e) = edges.get_mut(&cdn) {
                    e.flush_all();
                }
            }
            last_flush.insert(cdn, req.clock);
        }
        if let Some(capacity) = surge.capacity.get_mut(&cdn) {
            if !capacity.admit(region_index, req.clock, req.joining) {
                vmp_obs::session_trace::emit(
                    vmp_obs::session_trace::TraceEventKind::Shed,
                    req.clock.0,
                    cdn.dense_index() as u8,
                    u32::from(req.joining),
                    0.0,
                );
                return Err(FetchError::Shed { cdn });
            }
        }
        let reset = routers
            .get(&cdn)
            .map(|r| r.route_chunk(req.key, rng).connection_reset)
            .unwrap_or(false);
        let edge_key = req.key ^ (cdn.dense_index() as u64) << 56;
        if let Some(shield) = surge.shields.get_mut(&cdn) {
            if shield.coalesce(edge_key, req.clock) {
                // An origin fetch for this chunk is already in flight:
                // wait on it instead of stampeding the origin. The payload
                // is byte-identical to the leader's, and origin-error
                // bursts cannot strike a request that never reaches the
                // origin.
                let throughput_factor =
                    faults.map(|fi| fi.throughput_factor_in(cdn, region, req.clock)).unwrap_or(1.0);
                vmp_obs::session_trace::emit(
                    vmp_obs::session_trace::TraceEventKind::Coalesce,
                    req.clock.0,
                    cdn.dense_index() as u8,
                    0,
                    0.0,
                );
                return Ok(ChunkServe {
                    cache: CacheOutcome::Miss,
                    coalesced: true,
                    connection_reset: reset,
                    throughput_factor,
                });
            }
        }
        let cache = match edges.get_mut(&cdn) {
            Some(e) => e.fetch(region_index, edge_key, req.size)?,
            None => CacheOutcome::Hit,
        };
        if cache == CacheOutcome::Miss {
            if let Some(shield) = surge.shields.get_mut(&cdn) {
                shield.begin_fetch(edge_key, req.clock);
            }
            if let Some(fi) = faults {
                if fi.origin_error_in(cdn, region, req.clock, rng) {
                    return Err(FetchError::OriginUnavailable { cdn });
                }
            }
        }
        let throughput_factor =
            faults.map(|fi| fi.throughput_factor_in(cdn, region, req.clock)).unwrap_or(1.0);
        Ok(ChunkServe { cache, coalesced: false, connection_reset: reset, throughput_factor })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_core::ladder::BitrateLadder;
    use vmp_manifest::types::PresentationBuilder;

    fn window() -> LiveWindow {
        LiveWindow::new(Seconds(100.0), 0xE4E47)
    }

    #[test]
    fn live_edge_advances_with_the_clock() {
        let lw = window();
        assert_eq!(lw.sequence_at(Seconds(0.0)), 0, "pre-event viewers wait for sequence 0");
        assert_eq!(lw.sequence_at(Seconds(100.0)), 0);
        assert_eq!(lw.sequence_at(Seconds(104.5)), 1);
        assert_eq!(lw.sequence_at(Seconds(140.0)), 10);
        assert_eq!(lw.publish_time(0), Seconds(104.0));
        assert_eq!(lw.publish_time(9), Seconds(140.0));
    }

    #[test]
    fn sliding_window_tracks_the_edge() {
        let lw = window();
        assert_eq!(lw.oldest_at(Seconds(100.0)), 0, "window not yet full");
        // At sequence 10 the 6-wide window spans [5, 10].
        assert_eq!(lw.oldest_at(Seconds(140.0)), 5);
    }

    #[test]
    fn chunk_keys_are_shared_across_viewers_but_not_bitrates() {
        let lw = window();
        assert_eq!(lw.chunk_key(3, Kbps(800)), lw.chunk_key(3, Kbps(800)));
        assert_ne!(lw.chunk_key(3, Kbps(800)), lw.chunk_key(3, Kbps(1600)));
        assert_ne!(lw.chunk_key(3, Kbps(800)), lw.chunk_key(4, Kbps(800)));
        let other_event = LiveWindow::new(Seconds(100.0), 0xBEEF);
        assert_ne!(lw.chunk_key(3, Kbps(800)), other_event.chunk_key(3, Kbps(800)));
    }

    #[test]
    fn manifest_at_renders_the_sliding_window() {
        let lw = window();
        let p = PresentationBuilder::new("ev", BitrateLadder::from_bitrates(&[800]).unwrap())
            .chunk_duration(Seconds(4.0))
            .build()
            .unwrap();
        let early = lw.manifest_at(&p, 0, Seconds(100.0)).unwrap();
        assert_eq!(early.media_sequence, 0);
        assert!(!early.ended);
        let later = lw.manifest_at(&p, 0, Seconds(140.0)).unwrap();
        assert_eq!(later.media_sequence, 5);
        assert_eq!(later.segments.len(), 6);
        assert_eq!(later.segments[0].uri, "ev/v800/live-00005.ts");
    }
}

//! Session-completion hooks for streaming consumers.
//!
//! The health plane (`vmp-monitor`) wants to see every finished session *as
//! it finishes*, not in a second pass over collected records. [`SessionEnd`]
//! is the hand-off unit: the full [`SessionOutcome`] plus the serving
//! context only the harness knows (which publisher, which edge region).
//! Anything implementing [`CompletionSink`] can be wired into a cohort loop
//! and fed one completion at a time, in fault-clock order or not — consumers
//! must tolerate out-of-order arrival within a tick, since staggered
//! sessions finish out of order by construction.

use vmp_core::cdn::CdnName;
use vmp_core::units::Seconds;

use crate::player::{ExitCause, SessionOutcome};

/// One finished session, enriched with serving context.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionEnd {
    /// The CDN the broker first assigned — the attribution target when the
    /// session later failed over (a failover away from X is evidence
    /// *against* X, not against the rescuer).
    pub primary_cdn: CdnName,
    /// Edge region index the session was served from, when the harness
    /// tracks regions.
    pub region: Option<usize>,
    /// Serving publisher id, when known.
    pub publisher: Option<u64>,
    /// The complete playback outcome.
    pub outcome: SessionOutcome,
}

impl SessionEnd {
    /// Wraps an outcome, attributing it to the first CDN it used.
    pub fn new(outcome: SessionOutcome) -> SessionEnd {
        let primary_cdn = outcome.cdns.first().copied().unwrap_or(CdnName::A);
        SessionEnd { primary_cdn, region: None, publisher: None, outcome }
    }

    /// Sets the serving region.
    pub fn in_region(mut self, region: usize) -> SessionEnd {
        self.region = Some(region);
        self
    }

    /// Sets the serving publisher.
    pub fn for_publisher(mut self, publisher: u64) -> SessionEnd {
        self.publisher = Some(publisher);
        self
    }

    /// Fault-clock time the session ended.
    pub fn end_clock(&self) -> Seconds {
        self.outcome.end_clock
    }

    /// Whether the session died fatally (retry + failover budgets spent).
    pub fn is_fatal(&self) -> bool {
        self.outcome.exit == ExitCause::FatalCdnFailure
    }

    /// Whether the viewer never saw a frame (fatal exit before any chunk).
    pub fn join_failed(&self) -> bool {
        self.is_fatal() && self.outcome.downloaded.0 == 0.0
    }
}

/// Starts a session-trace scope for a session the harness is about to
/// play, translating the workspace's tag types into the compact dense
/// encodings `vmp-obs` stores. Returns a disarmed no-op scope when
/// session tracing is off.
pub fn trace_begin(
    session: u64,
    publisher: Option<u64>,
    cdn: Option<CdnName>,
    region: Option<usize>,
    start_clock: Seconds,
) -> vmp_obs::session_trace::SessionScope {
    use vmp_obs::session_trace::{NO_CDN, NO_PUBLISHER, NO_REGION};
    vmp_obs::session_trace::begin(
        session,
        publisher.unwrap_or(NO_PUBLISHER),
        cdn.map_or(NO_CDN, |c| c.dense_index() as u8),
        region.map_or(NO_REGION, |r| r.min(NO_REGION as usize - 1) as u8),
        start_clock.0,
    )
}

/// Starts a new session-trace exemplar epoch. Harnesses that replay
/// several populations over the same fault-clock range (scenario arms,
/// replays, controls) call this before each population so alert exemplar
/// queries only see the population that raised the alert. No-op when
/// tracing is off.
pub fn trace_epoch() {
    vmp_obs::session_trace::next_epoch();
}

/// Completes a trace scope from a finished outcome, offering the session
/// to the tail sampler. The primary-CDN tag follows [`SessionEnd`]'s
/// attribution (first CDN used), and the rebuffer ratio follows the
/// monitor plane's convention: stall time over stall-plus-play time.
pub fn trace_finish(scope: vmp_obs::session_trace::SessionScope, outcome: &SessionOutcome) {
    let primary = outcome.cdns.first().map(|c| c.dense_index() as u8);
    let stall = outcome.qoe.rebuffer_time.0;
    let denom = stall + outcome.qoe.played.0;
    let ratio = if denom > 0.0 { stall / denom } else { 0.0 };
    scope.finish_tagged(
        primary,
        outcome.end_clock.0,
        outcome.exit == ExitCause::FatalCdnFailure,
        ratio,
    );
}

/// Receiver of session completions, called once per finished session.
pub trait CompletionSink {
    /// Accepts one completion.
    fn on_session_end(&mut self, end: &SessionEnd);
}

impl<F: FnMut(&SessionEnd)> CompletionSink for F {
    fn on_session_end(&mut self, end: &SessionEnd) {
        self(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_core::qoe::QoeSummary;
    use vmp_core::units::Kbps;

    fn outcome(exit: ExitCause, downloaded: f64) -> SessionOutcome {
        SessionOutcome {
            qoe: QoeSummary {
                avg_bitrate: Kbps(1200),
                played: Seconds(downloaded),
                rebuffer_time: Seconds(2.0),
                startup_delay: Seconds(0.5),
                bitrate_switches: 0,
                cdn_switches: 0,
            },
            bitrates_used: vec![],
            cdns: vec![CdnName::C, CdnName::A],
            downloaded: Seconds(downloaded),
            exit,
            retries: 1,
            timeouts: 0,
            end_clock: Seconds(640.0),
        }
    }

    #[test]
    fn attribution_targets_the_first_cdn() {
        let end = SessionEnd::new(outcome(ExitCause::Completed, 300.0)).in_region(2);
        assert_eq!(end.primary_cdn, CdnName::C);
        assert_eq!(end.region, Some(2));
        assert_eq!(end.end_clock(), Seconds(640.0));
        assert!(!end.is_fatal());
        assert!(!end.join_failed());
    }

    #[test]
    fn fatal_zero_download_is_a_join_failure() {
        let end = SessionEnd::new(outcome(ExitCause::FatalCdnFailure, 0.0));
        assert!(end.is_fatal());
        assert!(end.join_failed());
        let end = SessionEnd::new(outcome(ExitCause::FatalCdnFailure, 60.0));
        assert!(end.is_fatal());
        assert!(!end.join_failed());
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = 0u32;
        {
            let mut sink = |_e: &SessionEnd| seen += 1;
            sink.on_session_end(&SessionEnd::new(outcome(ExitCause::Completed, 10.0)));
        }
        assert_eq!(seen, 1);
    }
}

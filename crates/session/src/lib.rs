//! # vmp-session — the playback session simulator
//!
//! One run of [`player::Player`] is one *view*: the unit every analysis in
//! the paper counts. The player drives a discrete-event download loop —
//! manifest-declared ladder, ABR decision per chunk, Markov bandwidth, edge
//! cache hits/misses, anycast resets, optional mid-stream CDN failover —
//! and produces the per-view QoE (average bitrate, rebuffering ratio) that
//! Fig 15/16 compare between owners and syndicators.
//!
//! [`telemetry`] assembles the full §3 [`vmp_core::view::ViewRecord`] from a
//! session outcome plus client context; this *is* the monitoring library
//! that Conviva embeds in players.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod hooks;
pub mod live;
pub mod player;
pub mod telemetry;

pub use hooks::{CompletionSink, SessionEnd};
pub use live::{surge_infrastructure_fn, LiveWindow, SurgeLayer};
pub use player::{
    infrastructure_fn, ChunkRequest, ChunkServe, ExitCause, MultiCdnContext, PlaybackConfig,
    Player, SessionOutcome,
};
pub use telemetry::{ClientContext, TelemetryBuilder};

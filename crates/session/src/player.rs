//! The discrete-event playback loop.

use vmp_abr::algorithm::{AbrAlgorithm, AbrState};
use vmp_abr::network::NetworkModel;
use vmp_abr::predict::{HarmonicMeanPredictor, ThroughputPredictor};
use vmp_cdn::broker::Broker;
use vmp_cdn::edge::{CacheOutcome, EdgeCluster};
use vmp_cdn::routing::Router;
use vmp_cdn::strategy::CdnStrategy;
use vmp_core::cdn::CdnName;
use vmp_core::content::ContentClass;
use vmp_core::ladder::BitrateLadder;
use vmp_core::qoe::QoeSummary;
use vmp_core::units::{Kbps, Seconds};
use vmp_stats::Rng;

/// Static configuration of one playback session.
#[derive(Debug, Clone)]
pub struct PlaybackConfig {
    /// The advertised ladder.
    pub ladder: BitrateLadder,
    /// Nominal chunk duration.
    pub chunk_duration: Seconds,
    /// Total media length of the title.
    pub content_duration: Seconds,
    /// How much media the user intends to watch before leaving (abandoning
    /// early is the normal case; §4.2 shows short mobile views).
    pub intended_watch: Seconds,
    /// Media buffered before playback starts.
    pub startup_buffer: Seconds,
    /// Maximum client buffer.
    pub max_buffer: Seconds,
    /// Live or VoD (live views cannot buffer ahead beyond the live edge;
    /// modeled via a tight `max_buffer`).
    pub class: ContentClass,
}

impl PlaybackConfig {
    /// A standard VoD session watching `watch` of a `content`-long title.
    pub fn vod(ladder: BitrateLadder, content: Seconds, watch: Seconds) -> PlaybackConfig {
        PlaybackConfig {
            ladder,
            chunk_duration: Seconds(6.0),
            content_duration: content,
            intended_watch: watch,
            startup_buffer: Seconds(6.0),
            max_buffer: Seconds(60.0),
            class: ContentClass::Vod,
        }
    }

    /// A live session: small buffer, bounded by the event length.
    pub fn live(ladder: BitrateLadder, event: Seconds, watch: Seconds) -> PlaybackConfig {
        PlaybackConfig {
            ladder,
            chunk_duration: Seconds(4.0),
            content_duration: event,
            intended_watch: watch,
            startup_buffer: Seconds(4.0),
            max_buffer: Seconds(12.0),
            class: ContentClass::Live,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.chunk_duration.0 <= 0.0 {
            return Err("chunk duration must be positive".into());
        }
        if self.content_duration.0 < 0.0 || self.intended_watch.0 < 0.0 {
            return Err("durations must be non-negative".into());
        }
        if self.max_buffer.0 < self.chunk_duration.0 {
            return Err("max buffer must hold at least one chunk".into());
        }
        Ok(())
    }
}

/// Multi-CDN context: broker-driven selection and mid-stream failover.
pub struct MultiCdnContext<'a> {
    /// The broker making per-view and failover decisions.
    pub broker: &'a Broker,
    /// The publisher's CDN strategy.
    pub strategy: &'a CdnStrategy,
    /// Per-chunk probability that the current CDN fails for this client.
    pub failure_probability: f64,
    /// Per-CDN infrastructure: router and shared edge cluster.
    pub infrastructure: &'a mut dyn FnMut(CdnName, u64, vmp_core::units::Bytes, &mut Rng) -> ChunkServe,
}

/// How the CDN served one chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkServe {
    /// Edge cache outcome (miss adds origin fetch latency).
    pub cache: CacheOutcome,
    /// Whether an anycast route flap reset the connection.
    pub connection_reset: bool,
}

impl ChunkServe {
    /// A plain edge hit with no reset.
    pub fn hit() -> ChunkServe {
        ChunkServe { cache: CacheOutcome::Hit, connection_reset: false }
    }
}

/// Builds a [`MultiCdnContext::infrastructure`] closure from per-CDN routers
/// and edge clusters. Exposed so callers (synth, experiments) don't repeat
/// the plumbing.
pub fn infrastructure_fn<'a>(
    routers: &'a std::collections::HashMap<CdnName, Router>,
    edges: &'a mut std::collections::HashMap<CdnName, EdgeCluster>,
    region_index: usize,
) -> impl FnMut(CdnName, u64, vmp_core::units::Bytes, &mut Rng) -> ChunkServe + 'a {
    move |cdn, chunk_key, size, rng| {
        let reset = routers
            .get(&cdn)
            .map(|r| r.route_chunk(chunk_key, rng).connection_reset)
            .unwrap_or(false);
        let cache = edges
            .get_mut(&cdn)
            .map(|e| e.fetch(region_index, chunk_key ^ (cdn.dense_index() as u64) << 56, size))
            .unwrap_or(CacheOutcome::Hit);
        ChunkServe { cache, connection_reset: reset }
    }
}

/// Result of a simulated view.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Per-view QoE summary.
    pub qoe: QoeSummary,
    /// Bitrate chosen for each downloaded chunk.
    pub bitrates_used: Vec<Kbps>,
    /// CDNs used, in order of first use (≥ 1 entry).
    pub cdns: Vec<CdnName>,
    /// Media actually downloaded (= played, since users leave at
    /// `intended_watch`).
    pub downloaded: Seconds,
}

/// Cached handles into the global metrics registry, resolved once per
/// player so the per-chunk hot loop never takes the registry lock.
struct SessionMetrics {
    sessions: vmp_obs::Counter,
    chunks_fetched: vmp_obs::Counter,
    chunk_download_us: vmp_obs::Histogram,
    rebuffer_events: vmp_obs::Counter,
    bitrate_switches: vmp_obs::Counter,
    cdn_switches: vmp_obs::Counter,
    startup_delay_us: vmp_obs::Histogram,
}

impl SessionMetrics {
    fn new() -> SessionMetrics {
        SessionMetrics {
            sessions: vmp_obs::counter("session.sessions"),
            chunks_fetched: vmp_obs::counter("session.chunks_fetched"),
            chunk_download_us: vmp_obs::histogram("session.chunk_download_us"),
            rebuffer_events: vmp_obs::counter("session.rebuffer_events"),
            bitrate_switches: vmp_obs::counter("session.bitrate_switches"),
            cdn_switches: vmp_obs::counter("session.cdn_switches"),
            startup_delay_us: vmp_obs::histogram("session.startup_delay_us"),
        }
    }
}

/// The player: owns the per-session mutable state.
pub struct Player<'a> {
    config: PlaybackConfig,
    network: NetworkModel,
    abr: &'a dyn AbrAlgorithm,
    metrics: SessionMetrics,
}

impl<'a> Player<'a> {
    /// Creates a player.
    pub fn new(
        config: PlaybackConfig,
        network: NetworkModel,
        abr: &'a dyn AbrAlgorithm,
    ) -> Result<Player<'a>, String> {
        config.validate()?;
        Ok(Player { config, network, abr, metrics: SessionMetrics::new() })
    }

    /// Plays a single-CDN session with ideal (always-hit) edges.
    pub fn play(&mut self, cdn: CdnName, rng: &mut Rng) -> SessionOutcome {
        let mut serve = |_c: CdnName, _k: u64, _s: vmp_core::units::Bytes, _r: &mut Rng| ChunkServe::hit();
        self.run(cdn, None, &mut serve, rng)
    }

    /// Plays a session against real CDN infrastructure, with optional
    /// broker-driven failover.
    pub fn play_multi_cdn(&mut self, ctx: &mut MultiCdnContext<'_>, rng: &mut Rng) -> SessionOutcome {
        let initial = ctx
            .broker
            .select(ctx.strategy, self.config.class, rng)
            .unwrap_or_else(|| ctx.strategy.cdns()[0]);
        let failover = Some((ctx.broker, ctx.strategy, ctx.failure_probability));
        // Split borrows: the closure is separate from the broker references.
        let serve = &mut *ctx.infrastructure;
        self.run(initial, failover, serve, rng)
    }

    fn run(
        &mut self,
        initial_cdn: CdnName,
        failover: Option<(&Broker, &CdnStrategy, f64)>,
        serve: &mut dyn FnMut(CdnName, u64, vmp_core::units::Bytes, &mut Rng) -> ChunkServe,
        rng: &mut Rng,
    ) -> SessionOutcome {
        let cfg = &self.config;
        let target = Seconds(cfg.intended_watch.0.min(cfg.content_duration.0));
        let mut predictor = HarmonicMeanPredictor::new(5);
        self.metrics.sessions.inc();

        let mut cdn = initial_cdn;
        let mut cdns = vec![cdn];
        let mut bitrates_used = Vec::new();
        let mut buffer = Seconds::ZERO;
        let mut started = false;
        let mut startup_delay = Seconds::ZERO;
        let mut rebuffer = Seconds::ZERO;
        let mut downloaded = Seconds::ZERO;
        let mut weighted_bits = 0.0f64;
        let mut switches = 0u32;
        let mut cdn_switches = 0u32;
        let mut last_bitrate = Kbps::ZERO;
        let mut chunk_index = 0u64;

        while downloaded.0 + 1e-9 < target.0 {
            let this_chunk = Seconds(cfg.chunk_duration.0.min(target.0 - downloaded.0));
            // CDN failure / failover check.
            if let Some((broker, strategy, p_fail)) = failover {
                if rng.chance(p_fail) {
                    if let Some(next) = broker.failover(strategy, cfg.class, cdn, rng) {
                        cdn = next;
                        if !cdns.contains(&cdn) {
                            cdns.push(cdn);
                        }
                        cdn_switches += 1;
                        self.metrics.cdn_switches.inc();
                        vmp_obs::event(
                            vmp_obs::EventKind::CdnSwitch,
                            format!("chunk {chunk_index}: failover to {next:?}"),
                        );
                        predictor.reset();
                    }
                }
            }
            // ABR decision.
            let state = AbrState {
                buffer,
                predicted_throughput: predictor.estimate(),
                last_bitrate,
                chunk_duration: cfg.chunk_duration,
            };
            let bitrate = self.abr.choose(&cfg.ladder, &state);
            if last_bitrate != Kbps::ZERO && bitrate != last_bitrate {
                switches += 1;
                self.metrics.bitrate_switches.inc();
            }

            // Download.
            let size = bitrate.bytes_for(this_chunk);
            let throughput = self.network.next_throughput(rng);
            let rtt = self.network.rtt(rng);
            let served = serve(cdn, chunk_index ^ (bitrate.0 as u64) << 40, size, rng);
            let mut latency = rtt.0;
            if served.cache == CacheOutcome::Miss {
                latency += 3.0 * rtt.0; // origin fetch behind the edge
            }
            if served.connection_reset {
                latency += 2.0 * rtt.0; // TCP reconnect after a route flap
            }
            let transfer = size.0 as f64 * 8.0 / (throughput.bits_per_sec() as f64);
            let download_time = Seconds(transfer + latency);
            self.metrics.chunks_fetched.inc();
            // Simulated (virtual-clock) download time, in microseconds.
            self.metrics.chunk_download_us.record((download_time.0 * 1e6) as u64);

            // Buffer dynamics.
            if !started {
                startup_delay += download_time;
                buffer += this_chunk;
                if buffer.0 >= cfg.startup_buffer.0.min(target.0) {
                    started = true;
                }
            } else {
                let after_drain = buffer.0 - download_time.0;
                if after_drain < 0.0 {
                    rebuffer += Seconds(-after_drain);
                    buffer = Seconds::ZERO;
                    self.metrics.rebuffer_events.inc();
                    vmp_obs::event(
                        vmp_obs::EventKind::RebufferStart,
                        format!("chunk {chunk_index}: buffer empty on {cdn:?}"),
                    );
                    vmp_obs::event(
                        vmp_obs::EventKind::RebufferStop,
                        format!("chunk {chunk_index}: stalled {:.3}s", -after_drain),
                    );
                } else {
                    buffer = Seconds(after_drain);
                }
                buffer += this_chunk;
                if buffer.0 > cfg.max_buffer.0 {
                    // Pace: the player idles while the buffer drains to the
                    // cap. No stall — media plays during the wait.
                    buffer = cfg.max_buffer;
                }
            }

            // Bookkeeping.
            let effective_throughput = if download_time.0 > 0.0 {
                Kbps((size.0 as f64 * 8.0 / download_time.0 / 1000.0) as u32)
            } else {
                throughput
            };
            predictor.observe(effective_throughput);
            weighted_bits += bitrate.0 as f64 * this_chunk.0;
            bitrates_used.push(bitrate);
            last_bitrate = bitrate;
            downloaded += this_chunk;
            chunk_index += 1;
        }

        self.metrics.startup_delay_us.record((startup_delay.0 * 1e6) as u64);
        let played = downloaded;
        let avg_bitrate = if played.0 > 0.0 {
            Kbps((weighted_bits / played.0) as u32)
        } else {
            Kbps::ZERO
        };
        SessionOutcome {
            qoe: QoeSummary {
                avg_bitrate,
                played,
                rebuffer_time: rebuffer,
                startup_delay,
                bitrate_switches: switches,
                cdn_switches,
            },
            bitrates_used,
            cdns,
            downloaded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_abr::algorithm::{Bba, ThroughputRule};
    use vmp_abr::network::NetworkProfile;
    use vmp_core::geo::ConnectionType;

    fn ladder() -> BitrateLadder {
        BitrateLadder::from_bitrates(&[400, 800, 1600, 3200, 6400]).unwrap()
    }

    fn network(quality: f64) -> NetworkModel {
        NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Wifi, quality))
    }

    fn play_once(quality: f64, seed: u64) -> SessionOutcome {
        let cfg = PlaybackConfig::vod(ladder(), Seconds(1200.0), Seconds(600.0));
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(quality), &abr).unwrap();
        let mut rng = Rng::seed_from(seed);
        player.play(CdnName::A, &mut rng)
    }

    #[test]
    fn watches_exactly_the_intended_duration() {
        let out = play_once(1.0, 1);
        assert!((out.downloaded.0 - 600.0).abs() < 1e-6);
        assert!((out.qoe.played.0 - 600.0).abs() < 1e-6);
        assert_eq!(out.cdns, vec![CdnName::A]);
    }

    #[test]
    fn average_bitrate_within_ladder_bounds() {
        for seed in 0..10 {
            let out = play_once(1.0, seed);
            assert!(out.qoe.avg_bitrate >= Kbps(400));
            assert!(out.qoe.avg_bitrate <= Kbps(6400));
        }
    }

    #[test]
    fn better_network_gives_better_qoe() {
        let n = 30;
        let avg = |q: f64| {
            (0..n).map(|s| play_once(q, s).qoe.avg_bitrate.0 as f64).sum::<f64>() / n as f64
        };
        let rebuf = |q: f64| {
            (0..n).map(|s| play_once(q, s).qoe.rebuffer_ratio()).sum::<f64>() / n as f64
        };
        assert!(avg(1.5) > avg(0.3), "bitrate: {} vs {}", avg(1.5), avg(0.3));
        assert!(rebuf(0.2) >= rebuf(1.5), "rebuffer: {} vs {}", rebuf(0.2), rebuf(1.5));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = play_once(1.0, 42);
        let b = play_once(1.0, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn qoe_invariants_hold() {
        for seed in 0..20 {
            let out = play_once(0.4, seed);
            assert!(out.qoe.rebuffer_time.0 >= 0.0);
            assert!(out.qoe.startup_delay.0 >= 0.0);
            let ratio = out.qoe.rebuffer_ratio();
            assert!((0.0..=1.0).contains(&ratio));
            assert_eq!(out.bitrates_used.len() as f64, (600.0f64 / 6.0).ceil());
        }
    }

    #[test]
    fn short_view_shorter_than_content() {
        let cfg = PlaybackConfig::vod(ladder(), Seconds(120.0), Seconds(1_000_000.0));
        let abr = Bba::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(7);
        let out = player.play(CdnName::B, &mut rng);
        // Capped at content length.
        assert!((out.downloaded.0 - 120.0).abs() < 1e-6);
    }

    #[test]
    fn zero_watch_is_safe() {
        let cfg = PlaybackConfig::vod(ladder(), Seconds(120.0), Seconds(0.0));
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(8);
        let out = player.play(CdnName::A, &mut rng);
        assert_eq!(out.bitrates_used.len(), 0);
        assert_eq!(out.qoe.avg_bitrate, Kbps::ZERO);
        assert_eq!(out.qoe.rebuffer_ratio(), 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(100.0), Seconds(50.0));
        cfg.chunk_duration = Seconds(0.0);
        assert!(Player::new(cfg, network(1.0), &ThroughputRule::default()).is_err());
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(100.0), Seconds(50.0));
        cfg.max_buffer = Seconds(1.0);
        assert!(Player::new(cfg, network(1.0), &ThroughputRule::default()).is_err());
    }

    #[test]
    fn multi_cdn_failover_switches_cdns() {
        use vmp_cdn::broker::BrokerPolicy;
        use vmp_cdn::strategy::{CdnAssignment, CdnScope};
        let strategy = CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::All },
            CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
        ])
        .unwrap();
        let broker = Broker::new(BrokerPolicy::Weighted);
        let cfg = PlaybackConfig::vod(ladder(), Seconds(3600.0), Seconds(1800.0));
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut infra = |_c: CdnName, _k: u64, _s: vmp_core::units::Bytes, _r: &mut Rng| ChunkServe::hit();
        let mut ctx = MultiCdnContext {
            broker: &broker,
            strategy: &strategy,
            failure_probability: 0.05,
            infrastructure: &mut infra,
        };
        let mut rng = Rng::seed_from(11);
        let out = player.play_multi_cdn(&mut ctx, &mut rng);
        assert!(out.qoe.cdn_switches > 0, "expected at least one failover");
        assert_eq!(out.cdns.len(), 2);
    }

    #[test]
    fn cache_misses_hurt_startup() {
        let cfg = PlaybackConfig::vod(ladder(), Seconds(600.0), Seconds(300.0));
        let abr = ThroughputRule::default();
        // All-miss CDN.
        let mut player = Player::new(cfg.clone(), network(1.0), &abr).unwrap();
        let mut all_miss = |_c: CdnName, _k: u64, _s: vmp_core::units::Bytes, _r: &mut Rng| ChunkServe {
            cache: CacheOutcome::Miss,
            connection_reset: false,
        };
        let mut rng = Rng::seed_from(9);
        let miss_out = player.run(CdnName::A, None, &mut all_miss, &mut rng);
        // All-hit CDN, same seed.
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut all_hit = |_c: CdnName, _k: u64, _s: vmp_core::units::Bytes, _r: &mut Rng| ChunkServe::hit();
        let mut rng = Rng::seed_from(9);
        let hit_out = player.run(CdnName::A, None, &mut all_hit, &mut rng);
        assert!(miss_out.qoe.startup_delay.0 > hit_out.qoe.startup_delay.0);
    }
}

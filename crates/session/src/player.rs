//! The discrete-event playback loop.
//!
//! Fault awareness: every chunk fetch can now fail with a typed
//! [`FetchError`] (outage, origin error burst, timeout). The player reacts
//! the way a production client library does — bounded retries with
//! exponential backoff and deterministic jitter, graceful degradation to the
//! lowest ladder rung while retrying, escalation to broker failover once the
//! retry budget is exhausted, and a clean fatal exit
//! ([`ExitCause::FatalCdnFailure`]) when no alternative CDN exists. All
//! randomness comes from the session RNG, so identical seeds replay
//! identical incidents, and with the default [`RetryPolicy`] (timeouts
//! disabled) a fault-free session consumes exactly the same RNG stream as
//! before this machinery existed.

use crate::live::LiveWindow;
use vmp_abr::algorithm::{AbrAlgorithm, AbrState};
use vmp_abr::network::NetworkModel;
use vmp_abr::predict::{HarmonicMeanPredictor, ThroughputPredictor};
use vmp_cdn::broker::Broker;
use vmp_cdn::budget::RetryBudget;
use vmp_cdn::edge::{CacheOutcome, EdgeCluster};
use vmp_cdn::error::FetchError;
use vmp_cdn::routing::Router;
use vmp_cdn::strategy::CdnStrategy;
use vmp_core::cdn::CdnName;
use vmp_core::content::ContentClass;
use vmp_core::ladder::BitrateLadder;
use vmp_core::qoe::QoeSummary;
use vmp_core::units::{Bytes, Kbps, Seconds};
use vmp_faults::{FaultInjector, RetryPolicy};
use vmp_obs::session_trace::{self, TraceEventKind};
use vmp_stats::Rng;

/// Session-trace emit with the workspace's CDN naming; compiles down to a
/// relaxed load + branch when tracing is off.
#[inline]
fn trace_emit(kind: TraceEventKind, clock: Seconds, cdn: CdnName, code: u32, value: f64) {
    session_trace::emit(kind, clock.0, cdn.dense_index() as u8, code, value);
}

/// Hard cap on mid-session failovers; prevents two broken CDNs from
/// ping-ponging a session forever. Hitting the cap converts the next
/// exhausted retry budget into a fatal exit.
const MAX_FAILOVERS: u32 = 8;

/// Static configuration of one playback session.
#[derive(Debug, Clone)]
pub struct PlaybackConfig {
    /// The advertised ladder.
    pub ladder: BitrateLadder,
    /// Nominal chunk duration.
    pub chunk_duration: Seconds,
    /// Total media length of the title.
    pub content_duration: Seconds,
    /// How much media the user intends to watch before leaving (abandoning
    /// early is the normal case; §4.2 shows short mobile views).
    pub intended_watch: Seconds,
    /// Media buffered before playback starts.
    pub startup_buffer: Seconds,
    /// Maximum client buffer.
    pub max_buffer: Seconds,
    /// Live or VoD (live views cannot buffer ahead beyond the live edge;
    /// modeled via a tight `max_buffer`).
    pub class: ContentClass,
    /// Where on the shared fault timeline this session starts. Sessions in
    /// a cohort get staggered offsets so an incident hits them mid-stream,
    /// at startup, or not at all.
    pub start_offset: Seconds,
    /// Retry/backoff/timeout policy for failed chunk fetches. The default
    /// disables timeouts, so fault-free simulations behave exactly as they
    /// did before fault injection existed.
    pub retry: RetryPolicy,
    /// When set, this session follows a shared live event: chunk keys
    /// derive from the event's media sequence (so every viewer at the live
    /// edge requests the same bytes) and the player waits out segment
    /// publish times instead of racing ahead of the encoder. `None` (the
    /// default) keeps the original per-session VoD keying.
    pub live_window: Option<LiveWindow>,
}

impl PlaybackConfig {
    /// A standard VoD session watching `watch` of a `content`-long title.
    pub fn vod(ladder: BitrateLadder, content: Seconds, watch: Seconds) -> PlaybackConfig {
        PlaybackConfig {
            ladder,
            chunk_duration: Seconds(6.0),
            content_duration: content,
            intended_watch: watch,
            startup_buffer: Seconds(6.0),
            max_buffer: Seconds(60.0),
            class: ContentClass::Vod,
            start_offset: Seconds::ZERO,
            retry: RetryPolicy::default(),
            live_window: None,
        }
    }

    /// A live session: small buffer, bounded by the event length.
    pub fn live(ladder: BitrateLadder, event: Seconds, watch: Seconds) -> PlaybackConfig {
        PlaybackConfig {
            ladder,
            chunk_duration: Seconds(4.0),
            content_duration: event,
            intended_watch: watch,
            startup_buffer: Seconds(4.0),
            max_buffer: Seconds(12.0),
            class: ContentClass::Live,
            start_offset: Seconds::ZERO,
            retry: RetryPolicy::default(),
            live_window: None,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.chunk_duration.0 <= 0.0 {
            return Err("chunk duration must be positive".into());
        }
        if self.content_duration.0 < 0.0 || self.intended_watch.0 < 0.0 {
            return Err("durations must be non-negative".into());
        }
        if self.max_buffer.0 < self.chunk_duration.0 {
            return Err("max buffer must hold at least one chunk".into());
        }
        if self.start_offset.0 < 0.0 {
            return Err("start offset must be non-negative".into());
        }
        self.retry.validate()
    }
}

/// One chunk (or manifest) fetch as the CDN substrate sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkRequest {
    /// The CDN being asked.
    pub cdn: CdnName,
    /// Opaque chunk key (content + bitrate addressed).
    pub key: u64,
    /// Requested bytes.
    pub size: Bytes,
    /// The session's fault clock at request time (virtual seconds on the
    /// shared incident timeline, never wall time).
    pub clock: Seconds,
    /// Whether the session is still joining (has not started playback).
    /// Admission control sheds joining requests before in-progress ones.
    pub joining: bool,
}

/// Multi-CDN context: broker-driven selection and mid-stream failover.
pub struct MultiCdnContext<'a> {
    /// The broker making per-view and failover decisions.
    pub broker: &'a Broker,
    /// The publisher's CDN strategy.
    pub strategy: &'a CdnStrategy,
    /// Per-chunk probability that the current CDN fails for this client
    /// (legacy client-perceived failure, independent of injected faults).
    pub failure_probability: f64,
    /// Whether the client escalates to [`Broker::failover`] at all. Off
    /// models a naive player that rides a broken CDN down.
    pub failover_enabled: bool,
    /// Whether fetch failures/successes feed the broker's circuit breakers
    /// so selection routes around quarantined CDNs.
    pub health_gate: bool,
    /// The shared fault plan, if this cohort runs under injected faults.
    pub faults: Option<&'a FaultInjector>,
    /// Shared per-CDN retry budget, layered over per-session backoff. When
    /// the budget denies a retry the session escalates straight to
    /// failover instead of hammering the struggling CDN. `None` keeps the
    /// original unbudgeted behaviour.
    pub retry_budget: Option<&'a RetryBudget>,
    /// Per-CDN infrastructure: router and shared edge cluster.
    pub infrastructure: &'a mut dyn FnMut(&ChunkRequest, &mut Rng) -> Result<ChunkServe, FetchError>,
}

impl std::fmt::Debug for MultiCdnContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCdnContext")
            .field("failure_probability", &self.failure_probability)
            .field("failover_enabled", &self.failover_enabled)
            .field("health_gate", &self.health_gate)
            .finish_non_exhaustive()
    }
}

/// How the CDN served one chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkServe {
    /// Edge cache outcome (miss adds origin fetch latency).
    pub cache: CacheOutcome,
    /// Whether this miss coalesced onto an in-flight origin fetch at the
    /// origin shield (cheaper than a dedicated origin round trip).
    pub coalesced: bool,
    /// Whether an anycast route flap reset the connection.
    pub connection_reset: bool,
    /// Multiplier on delivered throughput, `(0, 1]`; below 1 during an
    /// injected degraded-throughput window.
    pub throughput_factor: f64,
}

impl ChunkServe {
    /// A plain edge hit with no reset at full throughput.
    pub fn hit() -> ChunkServe {
        ChunkServe { cache: CacheOutcome::Hit, coalesced: false, connection_reset: false, throughput_factor: 1.0 }
    }
}

/// Why the session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCause {
    /// The viewer watched everything they intended to.
    Completed,
    /// Retries and failover were exhausted with no serving CDN left —
    /// including the single-CDN case where [`Broker::failover`] has no
    /// alternative to offer and returns `None`.
    FatalCdnFailure,
}

/// Builds a [`MultiCdnContext::infrastructure`] closure from per-CDN routers
/// and edge clusters, with optional fault injection. Exposed so callers
/// (synth, experiments) don't repeat the plumbing.
///
/// Under faults, the closure checks (in order): scheduled outage, pending
/// edge-cache flushes since the last request, anycast routing, the edge
/// fetch itself, origin error bursts (only on a cache miss — a hit never
/// touches the origin), and the degraded-throughput multiplier. Fault
/// queries draw from the RNG only inside active probabilistic windows, so a
/// `faults: None` closure consumes the same RNG stream as the pre-fault
/// implementation.
pub fn infrastructure_fn<'a>(
    routers: &'a std::collections::BTreeMap<CdnName, Router>,
    edges: &'a mut std::collections::BTreeMap<CdnName, EdgeCluster>,
    region_index: usize,
    faults: Option<&'a FaultInjector>,
) -> impl FnMut(&ChunkRequest, &mut Rng) -> Result<ChunkServe, FetchError> + 'a {
    let mut last_flush: std::collections::BTreeMap<CdnName, Seconds> = std::collections::BTreeMap::new();
    move |req, rng| {
        let cdn = req.cdn;
        let region = Some(region_index);
        if let Some(fi) = faults {
            if fi.outage_in(cdn, region, req.clock) {
                return Err(FetchError::Outage { cdn });
            }
            let since = last_flush.get(&cdn).copied().unwrap_or(Seconds::ZERO);
            if fi.cache_flush_between_in(cdn, region, since, req.clock) {
                if let Some(e) = edges.get_mut(&cdn) {
                    e.flush_all();
                }
            }
            last_flush.insert(cdn, req.clock);
        }
        let reset = routers
            .get(&cdn)
            .map(|r| r.route_chunk(req.key, rng).connection_reset)
            .unwrap_or(false);
        let cache = match edges.get_mut(&cdn) {
            Some(e) => e.fetch(region_index, req.key ^ (cdn.dense_index() as u64) << 56, req.size)?,
            None => CacheOutcome::Hit,
        };
        if cache == CacheOutcome::Miss {
            if let Some(fi) = faults {
                if fi.origin_error_in(cdn, region, req.clock, rng) {
                    return Err(FetchError::OriginUnavailable { cdn });
                }
            }
        }
        let throughput_factor =
            faults.map(|fi| fi.throughput_factor_in(cdn, region, req.clock)).unwrap_or(1.0);
        Ok(ChunkServe { cache, coalesced: false, connection_reset: reset, throughput_factor })
    }
}

/// Result of a simulated view.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Per-view QoE summary.
    pub qoe: QoeSummary,
    /// Bitrate chosen for each downloaded chunk.
    pub bitrates_used: Vec<Kbps>,
    /// CDNs used, in order of first use (≥ 1 entry).
    pub cdns: Vec<CdnName>,
    /// Media actually downloaded (= played, since users leave at
    /// `intended_watch`).
    pub downloaded: Seconds,
    /// Why the session ended.
    pub exit: ExitCause,
    /// Failed fetch attempts that were retried (or escalated).
    pub retries: u32,
    /// How many of those failures were chunk timeouts.
    pub timeouts: u32,
    /// Fault-clock time when the session ended (start offset plus every
    /// download, backoff, and pacing wait). Streaming consumers key their
    /// windows off this, never off wall time.
    pub end_clock: Seconds,
}

/// Cached handles into the global metrics registry, resolved once per
/// player so the per-chunk hot loop never takes the registry lock.
struct SessionMetrics {
    play_span: vmp_obs::SpanHandle,
    sessions: vmp_obs::Counter,
    chunks_fetched: vmp_obs::Counter,
    chunk_download_us: vmp_obs::Histogram,
    rebuffer_events: vmp_obs::Counter,
    bitrate_switches: vmp_obs::Counter,
    cdn_switches: vmp_obs::Counter,
    startup_delay_us: vmp_obs::Histogram,
    retries: vmp_obs::Counter,
    timeouts: vmp_obs::Counter,
    manifest_retries: vmp_obs::Counter,
    fatal_exits: vmp_obs::Counter,
}

impl SessionMetrics {
    fn new() -> SessionMetrics {
        SessionMetrics {
            play_span: vmp_obs::SpanHandle::new("session.play"),
            sessions: vmp_obs::counter("session.sessions"),
            chunks_fetched: vmp_obs::counter("session.chunks_fetched"),
            chunk_download_us: vmp_obs::histogram("session.chunk_download_us"),
            rebuffer_events: vmp_obs::counter("session.rebuffer_events"),
            bitrate_switches: vmp_obs::counter("session.bitrate_switches"),
            cdn_switches: vmp_obs::counter("session.cdn_switches"),
            startup_delay_us: vmp_obs::histogram("session.startup_delay_us"),
            retries: vmp_obs::counter("session.retries"),
            timeouts: vmp_obs::counter("session.timeouts"),
            manifest_retries: vmp_obs::counter("session.manifest_retries"),
            fatal_exits: vmp_obs::counter("session.fatal_exits"),
        }
    }
}

/// Failover wiring threaded through [`Player::run`].
struct FailoverCtx<'a> {
    broker: &'a Broker,
    strategy: &'a CdnStrategy,
    p_fail: f64,
    enabled: bool,
    health_gate: bool,
    retry_budget: Option<&'a RetryBudget>,
}

/// Consults the shared retry budget (when one is wired) before a backoff
/// retry. Granting spends a token; denial converts the retry into an
/// immediate failover escalation.
fn budget_grants(failover: &Option<FailoverCtx<'_>>, cdn: CdnName, now: Seconds) -> bool {
    match failover {
        Some(FailoverCtx { retry_budget: Some(budget), .. }) => budget.try_spend(cdn, now),
        _ => true,
    }
}

/// The player: owns the per-session mutable state.
pub struct Player<'a> {
    config: PlaybackConfig,
    network: NetworkModel,
    abr: &'a dyn AbrAlgorithm,
    metrics: SessionMetrics,
}

impl std::fmt::Debug for Player<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Player")
            .field("config", &self.config)
            .field("abr", &self.abr.name())
            .finish_non_exhaustive()
    }
}

impl<'a> Player<'a> {
    /// Creates a player.
    pub fn new(
        config: PlaybackConfig,
        network: NetworkModel,
        abr: &'a dyn AbrAlgorithm,
    ) -> Result<Player<'a>, String> {
        config.validate()?;
        Ok(Player { config, network, abr, metrics: SessionMetrics::new() })
    }

    /// Plays a single-CDN session with ideal (always-hit) edges.
    pub fn play(&mut self, cdn: CdnName, rng: &mut Rng) -> SessionOutcome {
        self.play_with(cdn, None, rng)
    }

    /// Plays a single-CDN session with ideal edges under an optional fault
    /// plan. With no failover available, an outage that outlasts the retry
    /// budget ends the session with [`ExitCause::FatalCdnFailure`].
    pub fn play_with(
        &mut self,
        cdn: CdnName,
        faults: Option<&FaultInjector>,
        rng: &mut Rng,
    ) -> SessionOutcome {
        let mut serve = move |req: &ChunkRequest, _r: &mut Rng| {
            if let Some(fi) = faults {
                if fi.outage(req.cdn, req.clock) {
                    return Err(FetchError::Outage { cdn: req.cdn });
                }
                let mut served = ChunkServe::hit();
                served.throughput_factor = fi.throughput_factor(req.cdn, req.clock);
                return Ok(served);
            }
            Ok(ChunkServe::hit())
        };
        self.run(cdn, None, faults, &mut serve, rng)
    }

    /// Plays a session against real CDN infrastructure, with optional
    /// broker-driven failover.
    pub fn play_multi_cdn(&mut self, ctx: &mut MultiCdnContext<'_>, rng: &mut Rng) -> SessionOutcome {
        let initial = if ctx.health_gate {
            ctx.broker.select_at(ctx.strategy, self.config.class, self.config.start_offset, rng)
        } else {
            ctx.broker.select(ctx.strategy, self.config.class, rng)
        }
        .or_else(|| ctx.strategy.cdns().first().copied())
        .unwrap_or(CdnName::A);
        let failover = FailoverCtx {
            broker: ctx.broker,
            strategy: ctx.strategy,
            p_fail: ctx.failure_probability,
            enabled: ctx.failover_enabled,
            health_gate: ctx.health_gate,
            retry_budget: ctx.retry_budget,
        };
        // Split borrows: the closure is separate from the broker references.
        let serve = &mut *ctx.infrastructure;
        self.run(initial, Some(failover), ctx.faults, serve, rng)
    }

    fn run(
        &mut self,
        initial_cdn: CdnName,
        failover: Option<FailoverCtx<'_>>,
        faults: Option<&FaultInjector>,
        serve: &mut dyn FnMut(&ChunkRequest, &mut Rng) -> Result<ChunkServe, FetchError>,
        rng: &mut Rng,
    ) -> SessionOutcome {
        let _play_span = self.metrics.play_span.enter();
        let cfg = &self.config;
        let target = Seconds(cfg.intended_watch.0.min(cfg.content_duration.0));
        let mut predictor = HarmonicMeanPredictor::new(5);
        self.metrics.sessions.inc();

        let mut cdn = initial_cdn;
        let mut cdns = vec![cdn];
        let mut bitrates_used = Vec::new();
        let mut buffer = Seconds::ZERO;
        let mut started = false;
        let mut startup_delay = Seconds::ZERO;
        let mut rebuffer = Seconds::ZERO;
        let mut downloaded = Seconds::ZERO;
        let mut weighted_bits = 0.0f64;
        let mut switches = 0u32;
        let mut cdn_switches = 0u32;
        let mut last_bitrate = Kbps::ZERO;
        let mut chunk_index = 0u64;
        let mut live_seq: Option<u64> = None;
        let mut clock = cfg.start_offset;
        let mut retries = 0u32;
        let mut timeouts = 0u32;
        let mut failovers = 0u32;
        let mut exit = ExitCause::Completed;

        // Manifest fetch: under faults the manifest itself can fail; retry
        // with backoff, then fail over, then give up fatally.
        if let Some(fi) = faults {
            let mut attempt = 0u32;
            while fi.manifest_failure(cdn, clock, rng) {
                retries += 1;
                self.metrics.manifest_retries.inc();
                trace_emit(TraceEventKind::ManifestRetry, clock, cdn, attempt, 0.0);
                if let Some(fo) = &failover {
                    if fo.health_gate {
                        fo.broker.record_fetch_failure(cdn, clock);
                    }
                }
                if attempt < cfg.retry.max_retries && budget_grants(&failover, cdn, clock) {
                    let wait = cfg.retry.backoff(attempt, rng);
                    clock += wait;
                    startup_delay += wait;
                    trace_emit(TraceEventKind::Backoff, clock, cdn, attempt, wait.0);
                    attempt += 1;
                    continue;
                }
                let mut switched = false;
                if let Some(fo) = &failover {
                    if fo.enabled && failovers < MAX_FAILOVERS {
                        if let Some(next) =
                            fo.broker.failover_at(fo.strategy, cfg.class, cdn, clock, rng)
                        {
                            failovers += 1;
                            cdn = next;
                            if !cdns.contains(&cdn) {
                                cdns.push(cdn);
                            }
                            cdn_switches += 1;
                            self.metrics.cdn_switches.inc();
                            vmp_obs::event(
                                vmp_obs::EventKind::CdnSwitch,
                                format!("manifest: failover to {next:?} after fetch failures"),
                            );
                            trace_emit(TraceEventKind::CdnSwitch, clock, next, 0, 0.0);
                            attempt = 0;
                            switched = true;
                        }
                    }
                }
                if !switched {
                    exit = ExitCause::FatalCdnFailure;
                    self.metrics.fatal_exits.inc();
                    vmp_obs::event(
                        vmp_obs::EventKind::SessionFatal,
                        format!("manifest unavailable on {cdn:?}, no failover left"),
                    );
                    trace_emit(TraceEventKind::Fatal, clock, cdn, 4, 0.0);
                    break;
                }
            }
        }

        while exit == ExitCause::Completed && downloaded.0 + 1e-9 < target.0 {
            let this_chunk = Seconds(cfg.chunk_duration.0.min(target.0 - downloaded.0));
            // Legacy client-perceived CDN failure check. The chance() draw
            // happens unconditionally so RNG streams don't depend on the
            // failover_enabled flag.
            if let Some(fo) = &failover {
                if rng.chance(fo.p_fail) && fo.enabled {
                    if let Some(next) = fo.broker.failover_at(fo.strategy, cfg.class, cdn, clock, rng)
                    {
                        cdn = next;
                        if !cdns.contains(&cdn) {
                            cdns.push(cdn);
                        }
                        cdn_switches += 1;
                        self.metrics.cdn_switches.inc();
                        vmp_obs::event(
                            vmp_obs::EventKind::CdnSwitch,
                            format!("chunk {chunk_index}: failover to {next:?}"),
                        );
                        trace_emit(TraceEventKind::CdnSwitch, clock, next, 0, 0.0);
                        predictor.reset();
                    }
                }
            }
            // ABR decision.
            let state = AbrState {
                buffer,
                predicted_throughput: predictor.estimate(),
                last_bitrate,
                chunk_duration: cfg.chunk_duration,
            };
            let chosen = self.abr.choose(&cfg.ladder, &state);

            // Live pacing: the next segment may not be published yet. The
            // player idles at the live edge until the encoder finishes it —
            // a clock-only advance, same idiom as the max-buffer pacing
            // below (media keeps playing during the wait). A viewer who
            // slid out of the manifest window jumps forward to rejoin it.
            if let Some(lw) = &cfg.live_window {
                let next = match live_seq {
                    None => lw.sequence_at(clock),
                    Some(prev) => (prev + 1).max(lw.oldest_at(clock)),
                };
                let publish = lw.publish_time(next);
                if publish.0 > clock.0 {
                    clock = publish;
                }
                live_seq = Some(next);
            }
            // Download, with bounded retries. Retries degrade to the lowest
            // rung: while a CDN is misbehaving the client fights for liveness,
            // not quality.
            let mut attempt = 0u32;
            let mut chunk_wait = Seconds::ZERO;
            let outcome = loop {
                let bitrate = if attempt == 0 { chosen } else { cfg.ladder.min().bitrate };
                let size = bitrate.bytes_for(this_chunk);
                let throughput = self.network.next_throughput(rng);
                let rtt = self.network.rtt(rng);
                let key = match (&cfg.live_window, live_seq) {
                    (Some(lw), Some(seq)) => lw.chunk_key(seq, bitrate),
                    _ => chunk_index ^ (bitrate.0 as u64) << 40,
                };
                let req = ChunkRequest { cdn, key, size, clock, joining: !started };
                let failure = match serve(&req, rng) {
                    Err(e) => e,
                    Ok(served) => {
                        let mut latency = rtt.0;
                        if served.cache == CacheOutcome::Miss {
                            // A coalesced miss waits on an in-flight origin
                            // fetch (roughly half a round trip on average)
                            // instead of paying a full one.
                            latency += if served.coalesced { 1.5 * rtt.0 } else { 3.0 * rtt.0 };
                        }
                        if served.connection_reset {
                            latency += 2.0 * rtt.0; // TCP reconnect after a route flap
                        }
                        let factor = served.throughput_factor.max(0.01);
                        let transfer =
                            size.0 as f64 * 8.0 / (throughput.bits_per_sec() as f64 * factor);
                        let download_time = Seconds(transfer + latency);
                        if cfg.retry.timeouts_enabled() && download_time.0 > cfg.retry.timeout.0 {
                            timeouts += 1;
                            self.metrics.timeouts.inc();
                            // The client waited out the whole timeout.
                            chunk_wait += cfg.retry.timeout;
                            clock += cfg.retry.timeout;
                            trace_emit(
                                TraceEventKind::Timeout,
                                clock,
                                cdn,
                                attempt,
                                cfg.retry.timeout.0,
                            );
                            FetchError::Timeout { cdn }
                        } else {
                            break Ok((bitrate, size, download_time, throughput));
                        }
                    }
                };
                retries += 1;
                self.metrics.retries.inc();
                if !matches!(failure, FetchError::Timeout { .. }) {
                    trace_emit(TraceEventKind::ChunkError, clock, cdn, failure.trace_code(), 0.0);
                }
                trace_emit(TraceEventKind::Retry, clock, cdn, attempt, 0.0);
                if let Some(fo) = &failover {
                    if fo.health_gate {
                        fo.broker.record_fetch_failure(cdn, clock);
                    }
                }
                if attempt < cfg.retry.max_retries && budget_grants(&failover, cdn, clock) {
                    let wait = cfg.retry.backoff(attempt, rng);
                    chunk_wait += wait;
                    clock += wait;
                    trace_emit(TraceEventKind::Backoff, clock, cdn, attempt, wait.0);
                    attempt += 1;
                    continue;
                }
                // Retry budget exhausted: escalate to broker failover.
                let mut switched = false;
                if let Some(fo) = &failover {
                    if fo.enabled && failovers < MAX_FAILOVERS {
                        if let Some(next) =
                            fo.broker.failover_at(fo.strategy, cfg.class, cdn, clock, rng)
                        {
                            failovers += 1;
                            cdn = next;
                            if !cdns.contains(&cdn) {
                                cdns.push(cdn);
                            }
                            cdn_switches += 1;
                            self.metrics.cdn_switches.inc();
                            vmp_obs::event(
                                vmp_obs::EventKind::CdnSwitch,
                                format!(
                                    "chunk {chunk_index}: failover to {next:?} after {}",
                                    failure.label()
                                ),
                            );
                            trace_emit(TraceEventKind::CdnSwitch, clock, next, 0, 0.0);
                            predictor.reset();
                            attempt = 0;
                            switched = true;
                        }
                    }
                }
                if !switched {
                    break Err(failure);
                }
            };

            let (bitrate, size, download_time, throughput) = match outcome {
                Ok(success) => success,
                Err(e) => {
                    // No CDN can serve this chunk: fatal exit. The time spent
                    // failing still counts against QoE.
                    exit = ExitCause::FatalCdnFailure;
                    self.metrics.fatal_exits.inc();
                    vmp_obs::event(
                        vmp_obs::EventKind::SessionFatal,
                        format!("chunk {chunk_index}: {} with no failover left", e.label()),
                    );
                    trace_emit(TraceEventKind::Fatal, clock, cdn, e.trace_code(), 0.0);
                    if started {
                        rebuffer += chunk_wait;
                    } else {
                        startup_delay += chunk_wait;
                    }
                    break;
                }
            };
            if let Some(fo) = &failover {
                if fo.health_gate {
                    fo.broker.record_fetch_success(cdn);
                }
            }
            if last_bitrate != Kbps::ZERO && bitrate != last_bitrate {
                switches += 1;
                self.metrics.bitrate_switches.inc();
                trace_emit(TraceEventKind::AbrSwitch, clock, cdn, bitrate.0, 0.0);
            }
            self.metrics.chunks_fetched.inc();
            // Simulated (virtual-clock) download time, in microseconds.
            self.metrics.chunk_download_us.record((download_time.0 * 1e6) as u64);
            clock += download_time;
            trace_emit(TraceEventKind::ChunkFetch, clock, cdn, bitrate.0, download_time.0);

            // Buffer dynamics. Retry waits stall playback exactly like slow
            // downloads do.
            let elapsed = Seconds(download_time.0 + chunk_wait.0);
            if !started {
                startup_delay += elapsed;
                buffer += this_chunk;
                if buffer.0 >= cfg.startup_buffer.0.min(target.0) {
                    started = true;
                }
            } else {
                let after_drain = buffer.0 - elapsed.0;
                if after_drain < 0.0 {
                    rebuffer += Seconds(-after_drain);
                    buffer = Seconds::ZERO;
                    self.metrics.rebuffer_events.inc();
                    vmp_obs::event(
                        vmp_obs::EventKind::RebufferStart,
                        format!("chunk {chunk_index}: buffer empty on {cdn:?}"),
                    );
                    vmp_obs::event(
                        vmp_obs::EventKind::RebufferStop,
                        format!("chunk {chunk_index}: stalled {:.3}s", -after_drain),
                    );
                    session_trace::emit(
                        TraceEventKind::Rebuffer,
                        clock.0,
                        session_trace::NO_CDN,
                        0,
                        -after_drain,
                    );
                } else {
                    buffer = Seconds(after_drain);
                }
                buffer += this_chunk;
                if buffer.0 > cfg.max_buffer.0 {
                    // Pace: the player idles while the buffer drains to the
                    // cap. No stall — media plays during the wait, and the
                    // fault clock advances with it.
                    clock += Seconds(buffer.0 - cfg.max_buffer.0);
                    buffer = cfg.max_buffer;
                }
            }

            // Bookkeeping.
            let effective_throughput = if download_time.0 > 0.0 {
                Kbps((size.0 as f64 * 8.0 / download_time.0 / 1000.0) as u32)
            } else {
                throughput
            };
            predictor.observe(effective_throughput);
            weighted_bits += bitrate.0 as f64 * this_chunk.0;
            bitrates_used.push(bitrate);
            last_bitrate = bitrate;
            downloaded += this_chunk;
            chunk_index += 1;
        }

        self.metrics.startup_delay_us.record((startup_delay.0 * 1e6) as u64);
        let played = downloaded;
        let avg_bitrate = if played.0 > 0.0 {
            Kbps((weighted_bits / played.0) as u32)
        } else {
            Kbps::ZERO
        };
        SessionOutcome {
            qoe: QoeSummary {
                avg_bitrate,
                played,
                rebuffer_time: rebuffer,
                startup_delay,
                bitrate_switches: switches,
                cdn_switches,
            },
            bitrates_used,
            cdns,
            downloaded,
            exit,
            retries,
            timeouts,
            end_clock: clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_abr::algorithm::{Bba, ThroughputRule};
    use vmp_abr::network::NetworkProfile;
    use vmp_cdn::broker::BrokerPolicy;
    use vmp_cdn::strategy::{CdnAssignment, CdnScope};
    use vmp_core::geo::ConnectionType;
    use vmp_faults::FaultProfile;

    fn ladder() -> BitrateLadder {
        BitrateLadder::from_bitrates(&[400, 800, 1600, 3200, 6400]).unwrap()
    }

    fn network(quality: f64) -> NetworkModel {
        NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Wifi, quality))
    }

    fn two_cdn_strategy() -> CdnStrategy {
        CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::All },
            CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
        ])
        .unwrap()
    }

    fn play_once(quality: f64, seed: u64) -> SessionOutcome {
        let cfg = PlaybackConfig::vod(ladder(), Seconds(1200.0), Seconds(600.0));
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(quality), &abr).unwrap();
        let mut rng = Rng::seed_from(seed);
        player.play(CdnName::A, &mut rng)
    }

    #[test]
    fn watches_exactly_the_intended_duration() {
        let out = play_once(1.0, 1);
        assert!((out.downloaded.0 - 600.0).abs() < 1e-6);
        assert!((out.qoe.played.0 - 600.0).abs() < 1e-6);
        assert_eq!(out.cdns, vec![CdnName::A]);
        assert_eq!(out.exit, ExitCause::Completed);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn average_bitrate_within_ladder_bounds() {
        for seed in 0..10 {
            let out = play_once(1.0, seed);
            assert!(out.qoe.avg_bitrate >= Kbps(400));
            assert!(out.qoe.avg_bitrate <= Kbps(6400));
        }
    }

    #[test]
    fn better_network_gives_better_qoe() {
        let n = 30;
        let avg = |q: f64| {
            (0..n).map(|s| play_once(q, s).qoe.avg_bitrate.0 as f64).sum::<f64>() / n as f64
        };
        let rebuf = |q: f64| {
            (0..n).map(|s| play_once(q, s).qoe.rebuffer_ratio()).sum::<f64>() / n as f64
        };
        assert!(avg(1.5) > avg(0.3), "bitrate: {} vs {}", avg(1.5), avg(0.3));
        assert!(rebuf(0.2) >= rebuf(1.5), "rebuffer: {} vs {}", rebuf(0.2), rebuf(1.5));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = play_once(1.0, 42);
        let b = play_once(1.0, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn qoe_invariants_hold() {
        for seed in 0..20 {
            let out = play_once(0.4, seed);
            assert!(out.qoe.rebuffer_time.0 >= 0.0);
            assert!(out.qoe.startup_delay.0 >= 0.0);
            let ratio = out.qoe.rebuffer_ratio();
            assert!((0.0..=1.0).contains(&ratio));
            assert_eq!(out.bitrates_used.len() as f64, (600.0f64 / 6.0).ceil());
        }
    }

    #[test]
    fn short_view_shorter_than_content() {
        let cfg = PlaybackConfig::vod(ladder(), Seconds(120.0), Seconds(1_000_000.0));
        let abr = Bba::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(7);
        let out = player.play(CdnName::B, &mut rng);
        // Capped at content length.
        assert!((out.downloaded.0 - 120.0).abs() < 1e-6);
    }

    #[test]
    fn zero_watch_is_safe() {
        let cfg = PlaybackConfig::vod(ladder(), Seconds(120.0), Seconds(0.0));
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(8);
        let out = player.play(CdnName::A, &mut rng);
        assert_eq!(out.bitrates_used.len(), 0);
        assert_eq!(out.qoe.avg_bitrate, Kbps::ZERO);
        assert_eq!(out.qoe.rebuffer_ratio(), 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(100.0), Seconds(50.0));
        cfg.chunk_duration = Seconds(0.0);
        assert!(Player::new(cfg, network(1.0), &ThroughputRule::default()).is_err());
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(100.0), Seconds(50.0));
        cfg.max_buffer = Seconds(1.0);
        assert!(Player::new(cfg, network(1.0), &ThroughputRule::default()).is_err());
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(100.0), Seconds(50.0));
        cfg.retry.jitter = 5.0; // >= backoff_factor - 1 breaks monotonicity
        assert!(Player::new(cfg, network(1.0), &ThroughputRule::default()).is_err());
    }

    #[test]
    fn multi_cdn_failover_switches_cdns() {
        let strategy = two_cdn_strategy();
        let broker = Broker::new(BrokerPolicy::Weighted);
        let cfg = PlaybackConfig::vod(ladder(), Seconds(3600.0), Seconds(1800.0));
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut infra = |_req: &ChunkRequest, _r: &mut Rng| Ok(ChunkServe::hit());
        let mut ctx = MultiCdnContext {
            broker: &broker,
            strategy: &strategy,
            failure_probability: 0.05,
            failover_enabled: true,
            health_gate: false,
            faults: None,
            retry_budget: None,
            infrastructure: &mut infra,
        };
        let mut rng = Rng::seed_from(11);
        let out = player.play_multi_cdn(&mut ctx, &mut rng);
        assert!(out.qoe.cdn_switches > 0, "expected at least one failover");
        assert_eq!(out.cdns.len(), 2);
    }

    #[test]
    fn cache_misses_hurt_startup() {
        let cfg = PlaybackConfig::vod(ladder(), Seconds(600.0), Seconds(300.0));
        let abr = ThroughputRule::default();
        // All-miss CDN.
        let mut player = Player::new(cfg.clone(), network(1.0), &abr).unwrap();
        let mut all_miss = |_req: &ChunkRequest, _r: &mut Rng| {
            Ok(ChunkServe { cache: CacheOutcome::Miss, coalesced: false, connection_reset: false, throughput_factor: 1.0 })
        };
        let mut rng = Rng::seed_from(9);
        let miss_out = player.run(CdnName::A, None, None, &mut all_miss, &mut rng);
        // All-hit CDN, same seed.
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut all_hit = |_req: &ChunkRequest, _r: &mut Rng| Ok(ChunkServe::hit());
        let mut rng = Rng::seed_from(9);
        let hit_out = player.run(CdnName::A, None, None, &mut all_hit, &mut rng);
        assert!(miss_out.qoe.startup_delay.0 > hit_out.qoe.startup_delay.0);
    }

    #[test]
    fn empty_fault_plan_matches_plain_play() {
        let profile = FaultProfile::builder().build();
        let injector = FaultInjector::new(profile);
        let cfg = PlaybackConfig::vod(ladder(), Seconds(1200.0), Seconds(600.0));
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg.clone(), network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(21);
        let with_faults = player.play_with(CdnName::A, Some(&injector), &mut rng);
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(21);
        let plain = player.play(CdnName::A, &mut rng);
        assert_eq!(with_faults, plain);
    }

    #[test]
    fn retry_budget_exhaustion_fails_over_to_healthy_cdn() {
        let strategy = two_cdn_strategy();
        let broker = Broker::new(BrokerPolicy::Weighted);
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(600.0), Seconds(300.0));
        cfg.retry = vmp_faults::RetryPolicy::resilient();
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        // CDN A never serves; B always does.
        let mut infra = |req: &ChunkRequest, _r: &mut Rng| {
            if req.cdn == CdnName::A {
                Err(FetchError::Outage { cdn: CdnName::A })
            } else {
                Ok(ChunkServe::hit())
            }
        };
        let failover = FailoverCtx {
            broker: &broker,
            strategy: &strategy,
            p_fail: 0.0,
            enabled: true,
            health_gate: true,
            retry_budget: None,
        };
        let mut rng = Rng::seed_from(13);
        let out = player.run(CdnName::A, Some(failover), None, &mut infra, &mut rng);
        assert_eq!(out.exit, ExitCause::Completed);
        assert_eq!(out.cdns, vec![CdnName::A, CdnName::B]);
        // max_retries + 1 attempts all failed on A before the one failover;
        // any further retries are armed-timeout trips on B (slow top-rung
        // chunks), each recovered by a degraded refetch.
        assert_eq!(out.retries, 4 + out.timeouts);
        assert_eq!(out.qoe.cdn_switches, 1);
        // The consecutive failures tripped A's breaker.
        assert!(broker.quarantined(CdnName::A, Seconds(1.0)));
    }

    #[test]
    fn single_cdn_total_outage_is_fatal() {
        let profile = FaultProfile::builder()
            .outage(CdnName::A, Seconds::ZERO, Seconds(10_000.0))
            .build();
        let injector = FaultInjector::new(profile);
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(600.0), Seconds(300.0));
        cfg.retry = vmp_faults::RetryPolicy::resilient();
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(17);
        let out = player.play_with(CdnName::A, Some(&injector), &mut rng);
        assert_eq!(out.exit, ExitCause::FatalCdnFailure);
        assert_eq!(out.downloaded, Seconds::ZERO);
        assert!(out.retries >= 4);
        assert_eq!(out.qoe.avg_bitrate, Kbps::ZERO);
    }

    #[test]
    fn timeouts_trip_on_throttled_throughput() {
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(600.0), Seconds(300.0));
        cfg.retry = vmp_faults::RetryPolicy::resilient();
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        // Deliver at 0.1% throughput: every fetch exceeds the 10s timeout.
        let mut throttled = |_req: &ChunkRequest, _r: &mut Rng| {
            Ok(ChunkServe { cache: CacheOutcome::Hit, coalesced: false, connection_reset: false, throughput_factor: 0.001 })
        };
        let mut rng = Rng::seed_from(19);
        let out = player.run(CdnName::A, None, None, &mut throttled, &mut rng);
        assert_eq!(out.exit, ExitCause::FatalCdnFailure);
        assert!(out.timeouts >= 4);
        assert_eq!(out.timeouts, out.retries);
    }

    #[test]
    fn degraded_window_slows_the_session() {
        let degraded_profile = FaultProfile::builder()
            .degrade(CdnName::A, Seconds::ZERO, Seconds(10_000.0), 0.05)
            .build();
        let injector = FaultInjector::new(degraded_profile);
        let cfg = PlaybackConfig::vod(ladder(), Seconds(600.0), Seconds(300.0));
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg.clone(), network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(23);
        let slow = player.play_with(CdnName::A, Some(&injector), &mut rng);
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(23);
        let fast = player.play(CdnName::A, &mut rng);
        let slow_score = slow.qoe.avg_bitrate.0 as f64 * (1.0 - slow.qoe.rebuffer_ratio());
        let fast_score = fast.qoe.avg_bitrate.0 as f64 * (1.0 - fast.qoe.rebuffer_ratio());
        assert!(
            slow_score < fast_score,
            "degraded window should hurt QoE: {slow_score} vs {fast_score}"
        );
    }

    #[test]
    fn faulted_sessions_replay_byte_identically() {
        let run_one = || {
            let injector = FaultInjector::new(FaultProfile::cdn_brownout(CdnName::A));
            let mut cfg = PlaybackConfig::vod(ladder(), Seconds(2400.0), Seconds(1800.0));
            cfg.retry = vmp_faults::RetryPolicy::resilient();
            cfg.start_offset = Seconds(250.0);
            let abr = ThroughputRule::default();
            let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
            let mut rng = Rng::seed_from(29);
            player.play_with(CdnName::A, Some(&injector), &mut rng)
        };
        assert_eq!(run_one(), run_one());
    }

    #[test]
    fn manifest_failure_window_delays_startup_or_kills_session() {
        let profile = FaultProfile::builder()
            .manifest_failures(CdnName::A, Seconds::ZERO, Seconds(10_000.0), 1.0)
            .build();
        let injector = FaultInjector::new(profile);
        let mut cfg = PlaybackConfig::vod(ladder(), Seconds(600.0), Seconds(300.0));
        cfg.retry = vmp_faults::RetryPolicy::resilient();
        let abr = ThroughputRule::default();
        let mut player = Player::new(cfg, network(1.0), &abr).unwrap();
        let mut rng = Rng::seed_from(31);
        // Single CDN, manifest always fails: fatal before the first chunk.
        let out = player.play_with(CdnName::A, Some(&injector), &mut rng);
        assert_eq!(out.exit, ExitCause::FatalCdnFailure);
        assert_eq!(out.downloaded, Seconds::ZERO);
        assert!(out.qoe.startup_delay.0 > 0.0, "backoff waits count as startup delay");
    }
}

//! Alert→exemplar consistency at the ISSUE's acceptance seed.
//!
//! Runs each monitor preset with session tracing armed and checks that
//! every raised alert carries exemplar traces that actually corroborate
//! it: right id namespace, right cell tags, inside the alert window, and
//! showing degradation evidence on the culprit CDN.
//!
//! This lives in its own integration-test binary (one `#[test]` fn) because
//! the trace collector is process-global: unit tests that play sessions in
//! parallel threads would otherwise offer traces into the armed capture.

use std::collections::BTreeMap;

use vmp_experiments::figures::monitor::{preset_alerts, preset_trace_base, presets};
use vmp_obs::session_trace::{self, SessionTrace, TraceConfig, TraceEventKind};
use vmp_monitor::Cell;

/// ISSUE acceptance seed.
const SEED: u64 = 7;

/// Id stride between preset arms (mirrors `figures::monitor::ARM_STRIDE`).
fn arm_range(preset: usize) -> std::ops::Range<u64> {
    preset_trace_base(preset)..preset_trace_base(preset + 1)
}

#[test]
fn every_preset_alert_carries_culprit_consistent_exemplars_at_seed_7() {
    // One arming covers all three preset arms; their id namespaces are
    // disjoint, so each alert's exemplars pin it to its arm.
    session_trace::arm(TraceConfig {
        seed: SEED,
        // Headroom over the default: three full arms of anomalous traces
        // must fit so the tail policy can't be forced to drop any.
        byte_budget: 64 << 20,
        ..TraceConfig::default()
    });
    let per_preset: Vec<_> = (0..presets().len()).map(|p| preset_alerts(SEED, p)).collect();
    let report = session_trace::finalize().expect("tracing was armed");
    let by_id: BTreeMap<u64, &SessionTrace> =
        report.traces.iter().map(|t| (t.session, t)).collect();

    for (preset, alerts) in per_preset.iter().enumerate() {
        let (label, culprit, _) = presets()[preset];
        assert!(!alerts.is_empty(), "{label}: preset raised no alerts at seed {SEED}");
        for alert in alerts {
            assert!(
                !alert.exemplars.is_empty(),
                "{label}: alert '{alert}' carries no exemplar traces"
            );
            let mut culprit_corroborated = alert.cell.cdn() != Some(culprit);
            for id in &alert.exemplars {
                assert!(
                    arm_range(preset).contains(id),
                    "{label}: exemplar {id} of '{alert}' is outside this arm's id range"
                );
                let t = by_id
                    .get(id)
                    .unwrap_or_else(|| panic!("{label}: exemplar {id} not in the kept set"));
                // Tag consistency: the trace must belong to the alert cell.
                if let Some(cdn) = alert.cell.cdn() {
                    assert_eq!(
                        t.cdn,
                        cdn.dense_index() as u8,
                        "{label}: exemplar {id} cdn tag disagrees with cell of '{alert}'"
                    );
                }
                if let Some(region) = alert.cell.region() {
                    assert_eq!(
                        t.region, region as u8,
                        "{label}: exemplar {id} region tag disagrees with cell of '{alert}'"
                    );
                }
                if let Cell::Publisher(p) = alert.cell {
                    assert_eq!(
                        t.publisher, p,
                        "{label}: exemplar {id} publisher tag disagrees with cell of '{alert}'"
                    );
                }
                // Window consistency: the session ended inside the window
                // the detector aggregated over.
                assert!(
                    t.end_clock >= alert.window.0 .0 && t.end_clock <= alert.window.1 .0,
                    "{label}: exemplar {id} ended at {} outside window {:?} of '{alert}'",
                    t.end_clock,
                    alert.window
                );
                // Degradation evidence: a fault-path event on the culprit
                // CDN, a stall, an anomaly flag, or a fatal exit. Exemplar
                // lists pad with normal head-sampled sessions when fewer
                // than the limit are anomalous, so only *some* exemplar
                // has to corroborate the culprit first-hand.
                let culprit_dense = culprit.dense_index() as u8;
                let degraded = t.fatal
                    || t.anomaly != 0
                    || t.events.iter().any(|e| {
                        e.kind == TraceEventKind::Rebuffer
                            || (e.cdn == culprit_dense
                                && matches!(
                                    e.kind,
                                    TraceEventKind::ChunkError
                                        | TraceEventKind::Retry
                                        | TraceEventKind::Timeout
                                        | TraceEventKind::ManifestRetry
                                        | TraceEventKind::RetryDenied
                                        | TraceEventKind::BreakerOpen
                                ))
                    });
                culprit_corroborated |= degraded;
            }
            assert!(
                culprit_corroborated,
                "{label}: no exemplar of '{alert}' shows degradation on {culprit:?}"
            );
        }
    }
}

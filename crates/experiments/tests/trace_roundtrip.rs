//! Round-trip validity of the Chrome `trace_event` export behind
//! `repro --trace PATH`: drive the monitor with tracing on, render the
//! trace JSON, parse it back, and check the structural invariants Chrome
//! and Perfetto rely on.

use serde_json::Value;
use vmp_core::cdn::CdnName;
use vmp_core::units::Seconds;
use vmp_monitor::{HealthMonitor, ViewEnd};

fn view(cdn: CdnName, at: f64, fatal: bool) -> ViewEnd {
    ViewEnd {
        cdn,
        region: Some(0),
        publisher: Some(0),
        end_clock: Seconds(at),
        played: if fatal { 0.0 } else { 300.0 },
        rebuffer: if fatal { 0.0 } else { 1.0 },
        bitrate_kbps: if fatal { 0.0 } else { 2500.0 },
        retries: if fatal { 6 } else { 0 },
        fatal,
        join_failed: fatal,
    }
}

fn str_field<'a>(event: &'a Value, key: &str) -> Option<&'a str> {
    event.get(key).and_then(Value::as_str)
}

#[test]
fn chrome_trace_export_round_trips_as_valid_trace_json() {
    vmp_obs::trace::clear_trace();
    vmp_obs::set_tracing(true);
    {
        // A wall-clock span slice plus a monitored outage: every phase the
        // exporter emits (X, C, i, M) lands in the trace.
        let _slice = vmp_obs::span("trace_roundtrip.feed");
        let mut monitor = HealthMonitor::with_defaults();
        for t in 0..16u64 {
            for k in 0..12u64 {
                let cdn = [CdnName::A, CdnName::B, CdnName::C][(k % 3) as usize];
                let fatal = t >= 10 && cdn == CdnName::B;
                monitor.observe(&view(cdn, t as f64 * 60.0 + k as f64, fatal));
            }
        }
        monitor.finish();
        assert!(!monitor.alerts().is_empty(), "the staged outage must alert");
    }
    vmp_obs::set_tracing(false);

    let json = vmp_obs::chrome_trace_json();
    assert_eq!(vmp_obs::trace_dropped(), 0, "collector must not overflow here");

    let doc: Value = serde_json::from_str(&json).expect("export must be parseable JSON");
    assert_eq!(str_field(&doc, "displayTimeUnit"), Some("ms"));
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("top level must carry a traceEvents array");
    assert!(!events.is_empty());

    for event in events {
        // Fields every Chrome trace viewer requires on every event.
        assert!(str_field(event, "name").is_some(), "event without name: {event:?}");
        assert!(event.get("ts").and_then(Value::as_u64).is_some(), "{event:?}");
        assert!(event.get("pid").and_then(Value::as_u64).is_some(), "{event:?}");
        assert!(event.get("tid").and_then(Value::as_u64).is_some(), "{event:?}");
        let ph = str_field(event, "ph").expect("event without phase");
        match ph {
            // Complete slices must carry a duration.
            "X" => assert!(event.get("dur").and_then(Value::as_u64).is_some(), "{event:?}"),
            // Instants must declare their scope (we always emit global).
            "i" => assert_eq!(str_field(event, "s"), Some("g"), "{event:?}"),
            "C" | "M" => {}
            other => panic!("unexpected phase {other:?}: {event:?}"),
        }
    }

    let with_phase = |ph: &'static str| {
        events.iter().filter(move |e| str_field(e, "ph") == Some(ph))
    };
    // All three trace processes (wall, fault timeline, resources) are
    // named via metadata.
    assert_eq!(with_phase("M").count(), 3);
    // The guarded span produced a wall-clock slice.
    assert!(with_phase("X").any(|e| str_field(e, "name") == Some("trace_roundtrip.feed")));
    // Per-CDN health counters landed on the virtual timeline with args.
    assert!(with_phase("C").any(|e| {
        str_field(e, "name") == Some("monitor cdn=B")
            && e.get("args").and_then(|a| a.get("fatal_rate")).and_then(Value::as_f64).is_some()
    }));
    // The alert stream shows up as instant markers carrying the alert text.
    assert!(with_phase("i").any(|e| {
        str_field(e, "name") == Some("monitor.alert")
            && e.get("args")
                .and_then(|a| a.get("detail"))
                .and_then(Value::as_str)
                .is_some_and(|d| d.contains("cdn=B"))
    }));
}

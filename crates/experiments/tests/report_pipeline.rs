//! End-to-end coverage of `repro`'s telemetry outputs: the `--report`
//! document is schema-valid with stage times that account for the run's
//! wall clock, the `--flame` profile parses back and covers the run
//! phases, the `--json` summary carries drop diagnostics matching the
//! stderr warnings, and two identical invocations produce identical
//! reports once timing-valued fields are masked.
//!
//! Runs the actual binary (fresh process per run — the global obs registry
//! is cumulative in-process, so determinism can only be checked across
//! processes) against standalone scenarios, which skip ecosystem
//! generation and keep the test fast.

use std::path::Path;
use std::process::Command;

use serde_json::Value;
use vmp_experiments::validate_report;

fn run_repro(dir: &Path, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.current_dir(dir);
    cmd.args(["--experiment", "resilience", "--experiment", "monitor", "--seed", "42"]);
    cmd.args(extra);
    cmd.output().expect("repro binary must spawn")
}

fn read_json(path: &Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{} is not valid JSON: {e:?}", path.display()))
}

#[test]
fn report_is_schema_valid_and_stages_cover_wall_time() {
    let dir = std::env::temp_dir().join("vmp_report_pipeline_a");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = run_repro(
        &dir,
        &["--report", "report.json", "--flame", "profile.folded", "--json", "run.json",
          "--sample-ms", "10"],
    );
    assert!(out.status.success(), "repro failed: {}", String::from_utf8_lossy(&out.stderr));

    // --report: schema-valid, stage inclusive times sum to within 5% of
    // the measured wall clock (the acceptance bar for the stage table).
    let report = read_json(&dir.join("report.json"));
    let errors = validate_report(&report);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    let wall = report.get("wall_time_secs").and_then(Value::as_f64).expect("wall");
    let stage_total = report.get("stage_seconds_total").and_then(Value::as_f64).expect("stages");
    assert!(wall > 0.0);
    assert!(
        (stage_total - wall).abs() <= 0.05 * wall,
        "stage total {stage_total}s must be within 5% of wall {wall}s"
    );

    // The Markdown twin landed next to it.
    let md = std::fs::read_to_string(dir.join("report.md")).expect("markdown twin");
    assert!(md.contains("# Run report (vmp-report/1)"));
    assert!(md.contains("## Stages"));

    // --flame: non-empty, parses, and covers the experiment phase.
    let folded = std::fs::read_to_string(dir.join("profile.folded")).expect("folded profile");
    let parsed = vmp_obs::parse_folded(&folded).expect("folded output must parse");
    assert!(!parsed.is_empty(), "folded profile must not be empty");
    assert!(parsed.iter().all(|(_, v)| *v > 0), "folded values are nonzero by construction");
    assert!(
        parsed.iter().any(|(path, _)| path.starts_with("run.experiments")),
        "profile must cover the experiment phase: {folded}"
    );

    // --json: the vmp-run/1 summary embeds the same diagnostics the stderr
    // warnings are derived from.
    let summary = read_json(&dir.join("run.json"));
    assert_eq!(summary.get("schema").and_then(Value::as_str), Some("vmp-run/1"));
    assert_eq!(summary.get("seed").and_then(Value::as_u64), Some(42));
    assert_eq!(summary.get("scale").and_then(Value::as_str), Some("standalone"));
    let experiments = summary.get("experiments").and_then(Value::as_array).expect("experiments");
    assert_eq!(experiments.len(), 2);
    let dropped = summary
        .get("diagnostics")
        .and_then(|d| d.get("events_dropped"))
        .and_then(Value::as_u64)
        .expect("diagnostics.events_dropped");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        dropped > 0,
        stderr.contains("event ring dropped"),
        "stderr drop warning must match diagnostics (dropped={dropped}): {stderr}"
    );
}

/// Replaces every timing-valued field with zero, in place: wall times,
/// span nanoseconds, RSS, quantiles, and the whole timeline (sample count
/// depends on scheduling). What survives — ids, titles, check outcomes,
/// span paths and counts, counter values, event streams — must be
/// bit-identical across runs at the same seed.
fn mask_timing(doc: &mut Value) {
    match doc {
        Value::Object(fields) => {
            for (key, value) in fields.iter_mut() {
                match key.as_str() {
                    "wall_time_secs" | "stage_seconds_total" | "peak_rss_bytes"
                    | "inclusive_ns" | "exclusive_ns" | "sum" | "mean" | "p50" | "p90"
                    | "p99" | "min" | "max" | "overflow"
                    // Sampler-driven metrics scale with tick count, which
                    // depends on scheduling, not the seed.
                    | "obs.timeline_samples" | "obs.rss_bytes" => *value = Value::U64(0),
                    "timeline" | "stages" | "buckets" => *value = Value::Null,
                    _ => mask_timing(value),
                }
            }
        }
        Value::Array(items) => items.iter_mut().for_each(mask_timing),
        _ => {}
    }
}

#[test]
fn reports_are_deterministic_across_runs_with_timing_masked() {
    let mut masked = Vec::new();
    for name in ["vmp_report_pipeline_b1", "vmp_report_pipeline_b2"] {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = run_repro(&dir, &["--report", "report.json", "--sample-ms", "10"]);
        assert!(out.status.success(), "repro failed: {}", String::from_utf8_lossy(&out.stderr));
        let mut report = read_json(&dir.join("report.json"));
        mask_timing(&mut report);
        masked.push(report);
    }
    let (a, b) = (&masked[0], &masked[1]);
    // Key-by-key comparison first, so a failure names the diverging section.
    for key in ["schema", "seed", "scale", "experiment_ids", "experiments", "metrics",
                "diagnostics", "profile"] {
        assert_eq!(a.get(key), b.get(key), "report field `{key}` must be deterministic");
    }
    assert_eq!(a, b, "masked reports must be identical");
}

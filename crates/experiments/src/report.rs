//! Unified machine-readable run report (`repro --report PATH`).
//!
//! One document — schema `vmp-report/1` — combining everything the
//! telemetry plane knows about a run: per-experiment wall times and check
//! outcomes, the top-level stage table (depth-1 spans on the driver
//! thread, whose inclusive times partition the run wall clock), the full
//! span profile (folded-stack aggregation), the resource-sampler timeline
//! (RSS + metric levels over time), a complete metrics snapshot, and
//! drop/saturation diagnostics. `repro` writes it as pretty JSON plus a
//! rendered Markdown twin (`PATH` with its extension swapped to `.md`), so
//! the same artifact serves CI gates and humans.
//!
//! [`validate_report`] is the schema check used by tests and CI: it walks
//! a parsed JSON document and verifies every required section and field
//! kind, so a report produced by any future version either still satisfies
//! consumers of `vmp-report/1` or fails loudly.

use serde::Serialize;
use vmp_obs::{ProfileEntry, RegistrySnapshot, Timeline};

use crate::result::ExperimentResult;

/// Schema identifier stamped on every report.
pub const REPORT_SCHEMA: &str = "vmp-report/1";

/// One experiment's outcome, reduced to the fields trend tooling needs.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentSummary {
    /// Experiment ID (`fig02`, `resilience`, ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Wall-clock seconds this experiment took.
    pub wall_time_secs: f64,
    /// Checks that held.
    pub checks_passed: usize,
    /// Checks that failed.
    pub checks_failed: usize,
    /// Names of failed checks (empty on a clean run).
    pub failed_checks: Vec<String>,
    /// Per-stage seconds from span-histogram deltas during this experiment.
    pub stages: Vec<(String, f64)>,
}

/// Drop and saturation counters that would otherwise hide in raw metrics.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostics {
    /// Events evicted from the obs ring buffer (`obs.events_dropped`).
    pub events_dropped: u64,
    /// Trace events retained by the Chrome-trace collector.
    pub trace_events: u64,
    /// Trace events discarded because the collector was at capacity.
    pub trace_dropped: u64,
    /// Resource-timeline samples evicted from the bounded ring.
    pub timeline_dropped: u64,
    /// Human-readable warnings derived from the counters above (empty when
    /// nothing was lost and every check passed).
    pub warnings: Vec<String>,
}

impl Diagnostics {
    /// Collects drop/saturation state from the global collectors, deriving
    /// a warning line per nonzero loss counter.
    pub fn collect(results: &[ExperimentResult], timeline_dropped: u64) -> Diagnostics {
        let events_dropped = vmp_obs::global().events_dropped();
        let trace_dropped = vmp_obs::trace_dropped();
        let trace_events = vmp_obs::trace_events().len() as u64;
        let mut warnings = Vec::new();
        if events_dropped > 0 {
            warnings.push(format!(
                "obs event ring dropped {events_dropped} events — oldest pipeline events \
                 are missing from the snapshot (raise the ring capacity to keep them)"
            ));
        }
        if trace_dropped > 0 {
            warnings.push(format!(
                "trace collector saturated: {trace_dropped} events dropped at capacity — \
                 the Chrome trace is truncated"
            ));
        }
        if timeline_dropped > 0 {
            warnings.push(format!(
                "resource timeline ring evicted {timeline_dropped} samples — the \
                 time-series section only covers the tail of the run"
            ));
        }
        let failed: usize = results.iter().map(|r| r.failures().len()).sum();
        if failed > 0 {
            warnings.push(format!("{failed} experiment check(s) failed"));
        }
        Diagnostics { events_dropped, trace_events, trace_dropped, timeline_dropped, warnings }
    }
}

/// The unified run report.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Always [`REPORT_SCHEMA`].
    pub schema: String,
    /// Master seed the run used.
    pub seed: u64,
    /// `full`, `quick`, or `standalone`.
    pub scale: String,
    /// View-volume multiplier (`repro --scale N`; 1 = the paper's default
    /// volume).
    pub scale_factor: u64,
    /// Experiment IDs in run order.
    pub experiment_ids: Vec<String>,
    /// End-to-end wall-clock seconds (ecosystem generation through the
    /// last experiment).
    pub wall_time_secs: f64,
    /// Sum of top-level stage inclusive times — within a few percent of
    /// `wall_time_secs` when span coverage is complete.
    pub stage_seconds_total: f64,
    /// Peak resident-set size observed by the sampler (bytes; 0 when
    /// sampling was off or `/proc` is unavailable).
    pub peak_rss_bytes: u64,
    /// Per-experiment outcomes.
    pub experiments: Vec<ExperimentSummary>,
    /// Top-level stages: depth-1 spans on the driver thread.
    pub stages: Vec<ProfileEntry>,
    /// Full span profile (every aggregated path).
    pub profile: Vec<ProfileEntry>,
    /// Resource-sampler time series.
    pub timeline: Timeline,
    /// Complete metrics snapshot at the end of the run.
    pub metrics: RegistrySnapshot,
    /// Drop/saturation diagnostics.
    pub diagnostics: Diagnostics,
}

impl RunReport {
    /// Assembles the report from the run's results plus the global
    /// profiler/sampler/metrics state. Call after the last experiment,
    /// before disarming profiling.
    pub fn collect(
        seed: u64,
        scale: &str,
        scale_factor: u64,
        results: &[ExperimentResult],
        wall_time_secs: f64,
        timeline: Timeline,
    ) -> RunReport {
        let stages = vmp_obs::stage_entries();
        let stage_seconds_total = stages.iter().map(|s| s.inclusive_ns as f64 / 1e9).sum();
        let peak_rss_bytes = timeline.peak_rss_bytes().max(vmp_obs::rss_bytes());
        let diagnostics = Diagnostics::collect(results, timeline.dropped);
        RunReport {
            schema: REPORT_SCHEMA.to_string(),
            seed,
            scale: scale.to_string(),
            scale_factor,
            experiment_ids: results.iter().map(|r| r.id.clone()).collect(),
            wall_time_secs,
            stage_seconds_total,
            peak_rss_bytes,
            experiments: results
                .iter()
                .map(|r| ExperimentSummary {
                    id: r.id.clone(),
                    title: r.title.clone(),
                    wall_time_secs: r.wall_time_secs,
                    checks_passed: r.checks.len() - r.failures().len(),
                    checks_failed: r.failures().len(),
                    failed_checks: r.failures().iter().map(|c| c.name.clone()).collect(),
                    stages: r.stages.clone(),
                })
                .collect(),
            stages,
            profile: vmp_obs::profile_entries(),
            timeline,
            metrics: vmp_obs::snapshot(),
            diagnostics,
        }
    }

    /// Pretty JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(json) => json,
            // Serialization of a value tree cannot fail; keep the seam
            // non-panicking for the panic-policy lint regardless.
            Err(e) => format!("{{\"schema\":\"{REPORT_SCHEMA}\",\"error\":\"{e:?}\"}}"),
        }
    }

    /// Renders the human-readable Markdown twin.
    pub fn to_markdown(&self) -> String {
        let mut md = String::new();
        md.push_str(&format!(
            "# Run report ({})\n\nseed `{}` · scale `{}` (×{}) · wall {:.2}s · peak RSS {}\n\n",
            self.schema,
            self.seed,
            self.scale,
            self.scale_factor,
            self.wall_time_secs,
            fmt_bytes(self.peak_rss_bytes),
        ));

        md.push_str("## Experiments\n\n| id | wall (s) | checks | failed |\n| --- | ---: | ---: | --- |\n");
        for e in &self.experiments {
            md.push_str(&format!(
                "| `{}` | {:.3} | {}/{} | {} |\n",
                e.id,
                e.wall_time_secs,
                e.checks_passed,
                e.checks_passed + e.checks_failed,
                if e.failed_checks.is_empty() { "—".to_string() } else { e.failed_checks.join(", ") },
            ));
        }

        md.push_str(&format!(
            "\n## Stages\n\nTop-level stages cover {:.2}s of the {:.2}s run ({:.0}%).\n\n\
             | stage | calls | inclusive (s) | % of wall |\n| --- | ---: | ---: | ---: |\n",
            self.stage_seconds_total,
            self.wall_time_secs,
            percent(self.stage_seconds_total, self.wall_time_secs),
        ));
        for s in &self.stages {
            let secs = s.inclusive_ns as f64 / 1e9;
            md.push_str(&format!(
                "| `{}` | {} | {:.3} | {:.1}% |\n",
                s.path,
                s.count,
                secs,
                percent(secs, self.wall_time_secs),
            ));
        }

        md.push_str(
            "\n## Profile (top paths by exclusive time)\n\n\
             | path | calls | inclusive (s) | exclusive (s) |\n| --- | ---: | ---: | ---: |\n",
        );
        let mut by_exclusive: Vec<&ProfileEntry> = self.profile.iter().collect();
        by_exclusive.sort_by(|a, b| {
            b.exclusive_ns.cmp(&a.exclusive_ns).then_with(|| a.path.cmp(&b.path))
        });
        for p in by_exclusive.iter().take(20) {
            md.push_str(&format!(
                "| `{}` | {} | {:.3} | {:.3} |\n",
                p.path,
                p.count,
                p.inclusive_ns as f64 / 1e9,
                p.exclusive_ns as f64 / 1e9,
            ));
        }

        md.push_str(&format!(
            "\n## Resource timeline\n\n{} samples at {} ms ({} evicted) · peak RSS {}\n",
            self.timeline.samples.len(),
            self.timeline.interval_ms,
            self.timeline.dropped,
            fmt_bytes(self.peak_rss_bytes),
        ));
        if let (Some(first), Some(last)) =
            (self.timeline.samples.first(), self.timeline.samples.last())
        {
            md.push_str(&format!(
                "RSS {} → {} over {:.2}s\n",
                fmt_bytes(first.rss_bytes),
                fmt_bytes(last.rss_bytes),
                (last.t_us.saturating_sub(first.t_us)) as f64 / 1e6,
            ));
        }

        md.push_str(&format!(
            "\n## Diagnostics\n\nevents dropped {} · trace events {} (dropped {}) · timeline evicted {}\n",
            self.diagnostics.events_dropped,
            self.diagnostics.trace_events,
            self.diagnostics.trace_dropped,
            self.diagnostics.timeline_dropped,
        ));
        for w in &self.diagnostics.warnings {
            md.push_str(&format!("\n> ⚠ {w}\n"));
        }
        md
    }
}

fn percent(part: f64, whole: f64) -> f64 {
    if whole <= 0.0 {
        0.0
    } else {
        part / whole * 100.0
    }
}

fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 * 1024 {
        format!("{:.2} GiB", bytes as f64 / (1024.0 * 1024.0 * 1024.0))
    } else if bytes >= 1024 * 1024 {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    } else {
        format!("{bytes} B")
    }
}

/// Validates a parsed `vmp-report/1` document: every required section
/// present with the right shape. Returns the list of violations (empty =
/// valid).
pub fn validate_report(doc: &serde_json::Value) -> Vec<String> {
    fn need(errors: &mut Vec<String>, key: &str, ok: bool) {
        if !ok {
            errors.push(format!("missing or mistyped field `{key}`"));
        }
    }
    let mut errors = Vec::new();
    need(
        &mut errors,
        "schema",
        doc.get("schema").and_then(|v| v.as_str()) == Some(REPORT_SCHEMA),
    );
    need(&mut errors, "seed", doc.get("seed").and_then(|v| v.as_u64()).is_some());
    need(&mut errors, "scale", doc.get("scale").and_then(|v| v.as_str()).is_some());
    need(
        &mut errors,
        "scale_factor",
        doc.get("scale_factor").and_then(|v| v.as_u64()).is_some_and(|s| s >= 1),
    );
    need(
        &mut errors,
        "experiment_ids",
        doc.get("experiment_ids").and_then(|v| v.as_array()).is_some(),
    );
    need(
        &mut errors,
        "wall_time_secs",
        doc.get("wall_time_secs").and_then(|v| v.as_f64()).is_some_and(|w| w >= 0.0),
    );
    need(
        &mut errors,
        "stage_seconds_total",
        doc.get("stage_seconds_total").and_then(|v| v.as_f64()).is_some(),
    );
    need(
        &mut errors,
        "peak_rss_bytes",
        doc.get("peak_rss_bytes").and_then(|v| v.as_u64()).is_some(),
    );

    match doc.get("experiments").and_then(|v| v.as_array()) {
        None => errors.push("missing or mistyped field `experiments`".to_string()),
        Some(rows) => {
            for row in rows {
                for key in ["id", "title"] {
                    if row.get(key).and_then(|v| v.as_str()).is_none() {
                        errors.push(format!("experiment row missing string `{key}`"));
                    }
                }
                for key in ["wall_time_secs"] {
                    if row.get(key).and_then(|v| v.as_f64()).is_none() {
                        errors.push(format!("experiment row missing number `{key}`"));
                    }
                }
            }
        }
    }

    for section in ["stages", "profile"] {
        match doc.get(section).and_then(|v| v.as_array()) {
            None => errors.push(format!("missing or mistyped field `{section}`")),
            Some(rows) => {
                for row in rows {
                    if row.get("path").and_then(|v| v.as_str()).is_none()
                        || row.get("count").and_then(|v| v.as_u64()).is_none()
                        || row.get("inclusive_ns").and_then(|v| v.as_u64()).is_none()
                        || row.get("exclusive_ns").and_then(|v| v.as_u64()).is_none()
                    {
                        errors.push(format!("malformed `{section}` row: {row:?}"));
                    }
                }
            }
        }
    }

    let timeline_ok = doc
        .get("timeline")
        .map(|t| {
            t.get("interval_ms").and_then(|v| v.as_u64()).is_some()
                && t.get("dropped").and_then(|v| v.as_u64()).is_some()
                && t.get("samples").and_then(|v| v.as_array()).is_some()
        })
        .unwrap_or(false);
    need(&mut errors, "timeline", timeline_ok);

    let metrics_ok = doc
        .get("metrics")
        .map(|m| {
            m.get("counters").and_then(|v| v.as_object()).is_some()
                && m.get("histograms").and_then(|v| v.as_object()).is_some()
        })
        .unwrap_or(false);
    need(&mut errors, "metrics", metrics_ok);

    let diagnostics_ok = doc
        .get("diagnostics")
        .map(|d| {
            d.get("events_dropped").and_then(|v| v.as_u64()).is_some()
                && d.get("trace_dropped").and_then(|v| v.as_u64()).is_some()
                && d.get("warnings").and_then(|v| v.as_array()).is_some()
        })
        .unwrap_or(false);
    need(&mut errors, "diagnostics", diagnostics_ok);

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Check;

    fn demo_results() -> Vec<ExperimentResult> {
        let mut ok = ExperimentResult::new("fig02", "Packaging");
        ok.wall_time_secs = 0.5;
        ok.checks.push(Check::new("a", true, "ok"));
        let mut bad = ExperimentResult::new("fig03", "Codecs");
        bad.checks.push(Check::new("b", false, "off"));
        vec![ok, bad]
    }

    #[test]
    fn report_serializes_validates_and_renders() {
        let results = demo_results();
        let report =
            RunReport::collect(7, "quick", 1, &results, 1.25, vmp_obs::Timeline::empty());
        let json = report.to_json_pretty();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("report JSON parses");
        let errors = validate_report(&doc);
        assert!(errors.is_empty(), "schema violations: {errors:?}");

        let md = report.to_markdown();
        assert!(md.contains("# Run report (vmp-report/1)"));
        assert!(md.contains("`fig02`"));
        assert!(md.contains("## Diagnostics"));
        // The failed check surfaces as a warning.
        assert!(report.diagnostics.warnings.iter().any(|w| w.contains("check(s) failed")));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        let doc: serde_json::Value =
            serde_json::from_str("{\"schema\": \"vmp-report/0\"}").expect("parses");
        let errors = validate_report(&doc);
        assert!(errors.iter().any(|e| e.contains("schema")));
        assert!(errors.iter().any(|e| e.contains("metrics")));
        assert!(errors.len() >= 8, "every missing section must be reported: {errors:?}");
    }
}

//! `live_event` — a flash-crowd live event graded end to end.
//!
//! A continuously-streaming live channel (sliding-window manifest,
//! media-sequence chunk keys shared by every viewer) takes a 100× join
//! storm at kickoff. The delivery plane runs the full surge-robustness
//! stack: per-edge admission control with a join-priority floor, an origin
//! shield coalescing simultaneous misses, and a shared per-CDN retry
//! budget layered over per-session backoff. Two arms replay the identical
//! population: a fault-free control, whose EWMA health baseline must
//! survive the load step without a single false alert and whose capacity
//! model must absorb the storm without shedding, and a brownout arm in
//! which CDN A browns out mid-event — the monitor must localize it with
//! precision/recall ≥ 0.9 while the budget provably bounds the retry
//! storm. Everything runs on the virtual clock and seeded RNG; a replay
//! fingerprint pins byte-identical reruns.

use std::collections::BTreeMap;

use crate::result::{Check, ExperimentResult};
use vmp_abr::algorithm::ThroughputRule;
use vmp_abr::network::{NetworkModel, NetworkProfile};
use vmp_analytics::report::Table;
use vmp_cdn::broker::{Broker, BrokerPolicy};
use vmp_cdn::budget::{BudgetConfig, RetryBudget};
use vmp_cdn::capacity::{CapacityConfig, EdgeCapacity};
use vmp_cdn::edge::EdgeCluster;
use vmp_cdn::routing::Router;
use vmp_cdn::shield::OriginShield;
use vmp_cdn::strategy::{CdnAssignment, CdnScope, CdnStrategy};
use vmp_core::cdn::CdnName;
use vmp_core::geo::ConnectionType;
use vmp_core::ladder::BitrateLadder;
use vmp_core::units::{Bytes, Seconds};
use vmp_faults::{FaultInjector, FaultProfile, RetryPolicy};
use vmp_monitor::{score_alerts, Cell, HealthMonitor};
use vmp_session::hooks::{CompletionSink, SessionEnd};
use vmp_session::live::{surge_infrastructure_fn, LiveWindow, SurgeLayer};
use vmp_session::player::{MultiCdnContext, PlaybackConfig, Player};
use vmp_stats::Rng;
use vmp_synth::live::JoinStorm;

/// Viewers in the event population (trickle + storm).
const SESSIONS: usize = 1200;

/// Edge regions per CDN; sessions rotate through them.
const REGIONS: usize = 3;

/// Publishers the population is spread over.
const PUBLISHERS: u64 = 4;

/// Session-trace id namespace for this scenario (disjoint from the synth
/// pipeline's telemetry ids and the monitor scenario's namespace).
const TRACE_ID_BASE: u64 = 9_100_000_000;

/// Id stride between arms, so the replay arm doesn't alias the original.
const ARM_STRIDE: u64 = 100_000;

/// Kickoff: the join-storm peak on the virtual clock. The channel itself
/// streams from t=0, so pre-kickoff trickle viewers give the monitor a
/// healthy baseline.
const KICKOFF: Seconds = Seconds(1200.0);

/// Arrivals are sampled over this window.
const ARRIVAL_END: Seconds = Seconds(1800.0);

/// Storm peak intensity over the pre-event baseline trickle.
const PEAK_RATIO: f64 = 100.0;

/// How long each viewer watches.
const WATCH: Seconds = Seconds(120.0);

/// Mid-event brownout onset (during the storm decay, after dense
/// completions have built the detector baseline but while the crowd is
/// still thick enough to amplify retries and feed the detector).
const BROWNOUT_START: Seconds = Seconds(1380.0);

/// Brownout length.
const BROWNOUT_LEN: Seconds = Seconds(360.0);

/// Scoring slack past a fault window's end (sessions that absorbed the
/// fault but completed after it cleared).
const SLACK: Seconds = Seconds(600.0);

/// Shared retry budget per CDN: burst of 150 retries, 1/s sustained.
const BUDGET: BudgetConfig = BudgetConfig { capacity: 150.0, refill_per_sec: 1.0 };

/// Per-edge capacity: 25 rps sustained over 10 s accounting buckets, with
/// 70% of a bucket open to new joins. The healthy storm peaks near
/// 15 rps/edge (absorbed); the brownout's retry amplification on CDN A
/// does not (shed).
const CAPACITY: CapacityConfig =
    CapacityConfig { per_edge_rps: 25.0, bucket: Seconds(10.0), join_headroom: 0.7 };

/// Origin-shield coalescing window (modeled origin fetch in-flight time).
const SHIELD_WINDOW: Seconds = Seconds(1.0);

/// One graded arm.
struct ArmReport {
    label: &'static str,
    alerts: usize,
    precision: f64,
    recall: f64,
    ttd: Option<f64>,
    top_culprit: Option<String>,
    top_cell: Option<Cell>,
    shed: u64,
    coalesced: u64,
    origin_fetches: u64,
    budget_granted: u64,
    budget_denied: u64,
    /// 3 × per-CDN analytic grant bound at the latest observed end clock.
    budget_bound: u64,
    /// QoE aggregates for [pre-kickoff, in-event] cohorts.
    cohorts: [CohortQoe; 2],
    /// FNV-1a over the alert stream, culprit ranking, and surge counters.
    fingerprint: u64,
}

/// QoE distribution summary for one arrival cohort.
#[derive(Default, Clone, Copy)]
struct CohortQoe {
    views: usize,
    mean_bitrate: f64,
    mean_rebuffer_ratio: f64,
    mean_startup: f64,
    fatals: usize,
    join_failures: usize,
    retries: u64,
}

impl CohortQoe {
    fn describe(&self) -> String {
        format!(
            "{} views, {:.0} kbps, rebuf {:.4}, startup {:.2}s, {} fatal ({} join-fail), {} retries",
            self.views,
            self.mean_bitrate,
            self.mean_rebuffer_ratio,
            self.mean_startup,
            self.fatals,
            self.join_failures,
            self.retries
        )
    }
}

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Static fixtures whose construction is fallible only on programmer error.
struct Setup {
    ladder: BitrateLadder,
    strategy: CdnStrategy,
}

fn setup() -> Option<Setup> {
    let ladder = BitrateLadder::from_bitrates(&[400, 800, 1600, 3200, 6400]).ok()?;
    let strategy = CdnStrategy::new(vec![
        CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::All },
        CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
        CdnAssignment { cdn: CdnName::C, weight: 1.0, scope: CdnScope::All },
    ])
    .ok()?;
    Some(Setup { ladder, strategy })
}

/// The shared event timeline: the channel has been live since t=0, so the
/// media sequence (and every viewer's chunk keys) advance from the start
/// of the virtual clock.
fn live_window() -> LiveWindow {
    LiveWindow::new(Seconds::ZERO, 0x11FE_E4E4)
}

/// The mid-event brownout of CDN A: throughput collapse, an edge flush at
/// onset (forcing the miss storm the shield must absorb), and a 60%
/// origin-error burst (feeding the retry storm the budget must bound).
fn brownout() -> FaultProfile {
    FaultProfile::builder()
        .degrade(CdnName::A, BROWNOUT_START, BROWNOUT_LEN, 0.25)
        .flush(CdnName::A, BROWNOUT_START)
        .origin_errors(CdnName::A, BROWNOUT_START, BROWNOUT_LEN, 0.6)
        .build()
}

/// Plays the full event population under the surge-protection stack and
/// grades the monitor's alert stream against `profile` (None = control).
fn run_arm(
    stp: &Setup,
    seed: u64,
    arm: u64,
    label: &'static str,
    profile: Option<&FaultProfile>,
) -> ArmReport {
    // Fresh exemplar epoch per arm (see figures/monitor::run_population).
    vmp_session::hooks::trace_epoch();
    let injector = profile.map(|p| FaultInjector::new(p.clone()));
    let broker = Broker::new(BrokerPolicy::Weighted);
    let routers: BTreeMap<CdnName, Router> = stp
        .strategy
        .cdns()
        .iter()
        .map(|c| (*c, Router::for_cdn(*c, 8)))
        .collect();
    let mut edges: BTreeMap<CdnName, EdgeCluster> = stp
        .strategy
        .cdns()
        .iter()
        .map(|c| (*c, EdgeCluster::new(REGIONS, Bytes(2_000_000_000))))
        .collect();
    let mut surge = SurgeLayer {
        capacity: stp
            .strategy
            .cdns()
            .iter()
            .filter_map(|c| EdgeCapacity::new(REGIONS, CAPACITY).ok().map(|cap| (*c, cap)))
            .collect(),
        shields: stp
            .strategy
            .cdns()
            .iter()
            .map(|c| (*c, OriginShield::new(SHIELD_WINDOW)))
            .collect(),
    };
    let budget = RetryBudget::new(BUDGET);
    let abr = ThroughputRule::default();

    // Correlated arrivals: a 100× join storm peaking at kickoff, sampled
    // once per arm from its own deterministic stream.
    let storm = JoinStorm::new(KICKOFF, PEAK_RATIO);
    let mut arrival_rng = Rng::seed_from(seed ^ 0x11FE_A221);
    let arrivals = storm.sample_arrivals(SESSIONS, Seconds::ZERO, ARRIVAL_END, &mut arrival_rng);

    let mut ends: Vec<SessionEnd> = Vec::with_capacity(SESSIONS);
    for (i, start) in arrivals.iter().enumerate() {
        let mut rng = Rng::seed_from(seed ^ 0x11FE_5708).fork(i as u64);
        let network =
            NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Wifi, 1.0));
        let region = i % REGIONS;
        // The "event" outlives every viewer; each watches WATCH from the
        // live edge at their arrival.
        let mut config = PlaybackConfig::live(stp.ladder.clone(), Seconds(3600.0), WATCH);
        config.start_offset = *start;
        config.live_window = Some(live_window());
        if profile.is_some() {
            config.retry = RetryPolicy::resilient();
        }
        let mut player = match Player::new(config, network, &abr) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let mut infra =
            surge_infrastructure_fn(&routers, &mut edges, region, injector.as_ref(), &mut surge);
        let mut ctx = MultiCdnContext {
            broker: &broker,
            strategy: &stp.strategy,
            failure_probability: 0.0,
            failover_enabled: false, // damage must stay attributed to the faulted CDN
            health_gate: false,
            faults: injector.as_ref(),
            retry_budget: Some(&budget),
            infrastructure: &mut infra,
        };
        // Scenario-private session-trace id namespace with a per-arm
        // stride (see figures/monitor).
        let trace = vmp_session::hooks::trace_begin(
            TRACE_ID_BASE + arm * ARM_STRIDE + i as u64,
            Some(i as u64 % PUBLISHERS),
            None,
            Some(region),
            *start,
        );
        let out = player.play_multi_cdn(&mut ctx, &mut rng);
        vmp_session::hooks::trace_finish(trace, &out);
        ends.push(SessionEnd::new(out).in_region(region).for_publisher(i as u64 % PUBLISHERS));
    }

    // QoE distributions by arrival cohort: pre-kickoff trickle vs in-event
    // flash crowd (the storm ramp starts 120 s before kickoff).
    let ramp_start = Seconds(KICKOFF.0 - 120.0);
    let mut cohorts = [CohortQoe::default(), CohortQoe::default()];
    for (end, start) in ends.iter().zip(arrivals.iter()) {
        let c = &mut cohorts[usize::from(start.0 >= ramp_start.0)];
        c.views += 1;
        c.mean_bitrate += end.outcome.qoe.avg_bitrate.0 as f64;
        c.mean_rebuffer_ratio += end.outcome.qoe.rebuffer_ratio();
        c.mean_startup += end.outcome.qoe.startup_delay.0;
        c.fatals += usize::from(end.is_fatal());
        c.join_failures += usize::from(end.join_failed());
        c.retries += end.outcome.retries as u64;
    }
    for c in &mut cohorts {
        if c.views > 0 {
            c.mean_bitrate /= c.views as f64;
            c.mean_rebuffer_ratio /= c.views as f64;
            c.mean_startup /= c.views as f64;
        }
    }
    let horizon = ends
        .iter()
        .map(|e| e.end_clock().0)
        .fold(0.0f64, f64::max);

    // Completions stream into the monitor in fault-clock end order, as a
    // central collector would ingest them (index tie-break for determinism).
    let mut order: Vec<usize> = (0..ends.len()).collect();
    order.sort_by(|a, b| {
        ends[*a]
            .end_clock()
            .0
            .partial_cmp(&ends[*b].end_clock().0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    let mut monitor = HealthMonitor::with_defaults();
    for i in order {
        monitor.on_session_end(&ends[i]);
    }
    monitor.finish();

    let (precision, recall, ttd) = match profile {
        Some(p) => {
            let score = score_alerts(monitor.alerts(), p, SLACK);
            (score.precision(), score.recall(), score.mean_time_to_detect())
        }
        // A silent detector under no faults is perfectly precise.
        None => (1.0, 1.0, None),
    };
    let culprits = monitor.culprits();
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for alert in monitor.alerts() {
        fingerprint = fnv1a(fingerprint, alert.to_string().as_bytes());
    }
    for culprit in &culprits {
        fingerprint = fnv1a(fingerprint, culprit.describe().as_bytes());
    }
    let counters = format!(
        "shed={} coalesced={} origin={} granted={} denied={}",
        surge.total_shed(),
        surge.total_coalesced(),
        surge.shields.values().map(|s| s.origin_fetches()).sum::<u64>(),
        budget.granted(),
        budget.denied()
    );
    fingerprint = fnv1a(fingerprint, counters.as_bytes());

    ArmReport {
        label,
        alerts: monitor.alerts().len(),
        precision,
        recall,
        ttd,
        top_culprit: culprits.first().map(|c| c.describe()),
        top_cell: culprits.first().map(|c| c.cell),
        shed: surge.total_shed(),
        coalesced: surge.total_coalesced(),
        origin_fetches: surge.shields.values().map(|s| s.origin_fetches()).sum(),
        budget_granted: budget.granted(),
        budget_denied: budget.denied(),
        budget_bound: 3 * budget.max_grants(Seconds(horizon)),
        cohorts,
        fingerprint,
    }
}

/// Runs the scenario for a master seed (`repro --seed N`).
pub fn run(seed: u64) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "live_event",
        "Scenario: flash-crowd live event under admission control, origin shield, and retry budgets",
    );
    let Some(stp) = setup() else {
        result.checks.push(Check::new(
            "static fixtures construct",
            false,
            "ladder/strategy construction failed",
        ));
        return result;
    };

    let profile = brownout();
    let control = run_arm(&stp, seed, 0, "control (storm, no faults)", None);
    let fault = run_arm(&stp, seed, 1, "brownout(A) mid-event", Some(&profile));
    let replay = run_arm(&stp, seed, 2, "brownout(A) replay", Some(&profile));

    let mut table = Table::new(
        "Surge scorecard: 1200 viewers, 100x join storm at kickoff, failover off",
        vec![
            "arm", "alerts", "precision", "recall", "ttd", "shed", "coalesced",
            "origin fetches", "budget granted/denied", "top culprit",
        ],
    );
    for arm in [&control, &fault] {
        table.row(vec![
            arm.label.to_string(),
            arm.alerts.to_string(),
            format!("{:.3}", arm.precision),
            format!("{:.3}", arm.recall),
            arm.ttd.map(|d| format!("{d:.0}s")).unwrap_or_else(|| "-".to_string()),
            arm.shed.to_string(),
            arm.coalesced.to_string(),
            arm.origin_fetches.to_string(),
            format!("{}/{}", arm.budget_granted, arm.budget_denied),
            arm.top_culprit.clone().unwrap_or_else(|| "-".to_string()),
        ]);
    }
    result.tables.push(table);

    let mut qoe = Table::new(
        "QoE distributions by arrival cohort (pre-kickoff trickle vs flash crowd)",
        vec!["arm", "cohort", "summary"],
    );
    for arm in [&control, &fault] {
        for (name, c) in ["pre-kickoff", "in-event"].iter().zip(arm.cohorts.iter()) {
            qoe.row(vec![arm.label.to_string(), name.to_string(), c.describe()]);
        }
    }
    result.tables.push(qoe);

    result.checks.push(Check::new(
        "control raises zero alerts through the 100x join storm",
        control.alerts == 0,
        format!("{} alerts in the fault-free control", control.alerts),
    ));
    let control_fatals: usize = control.cohorts.iter().map(|c| c.fatals).sum();
    let control_join_failures: usize = control.cohorts.iter().map(|c| c.join_failures).sum();
    result.checks.push(Check::new(
        "priority floor: control shedding only ever costs new joins",
        control.shed > 0 && control_fatals == control_join_failures,
        format!(
            "{} shed at the storm peak, {} fatal sessions all join failures ({}); \
             in-progress sessions retried through it",
            control.shed, control_fatals, control_join_failures
        ),
    ));
    result.checks.push(Check::new(
        "control shedding is graceful: under 2% of the crowd turned away",
        control_join_failures * 50 < SESSIONS,
        format!("{control_join_failures} of {SESSIONS} viewers shed at join"),
    ));
    result.checks.push(Check::new(
        "control coalesces the synchronized live misses",
        control.coalesced > 0,
        format!("{} coalesced onto {} origin fetches", control.coalesced, control.origin_fetches),
    ));
    result.checks.push(Check::new(
        "brownout arm raises alerts",
        fault.alerts > 0,
        format!("{} alerts", fault.alerts),
    ));
    result.checks.push(Check::new(
        "brownout precision >= 0.9",
        fault.precision >= 0.9,
        format!("precision {:.3} over {} alerts", fault.precision, fault.alerts),
    ));
    result.checks.push(Check::new(
        "brownout recall >= 0.9",
        fault.recall >= 0.9,
        format!("recall {:.3}", fault.recall),
    ));
    result.checks.push(Check::new(
        "brownout localizes CDN A",
        fault.top_cell.map(|c| c.cdn()) == Some(Some(CdnName::A)),
        fault.top_culprit.clone().unwrap_or_else(|| "no culprit ranked".to_string()),
    ));
    result.checks.push(Check::new(
        "brownout retry pressure sheds at least as much as the storm alone",
        fault.shed >= control.shed && fault.shed > 0,
        format!("{} requests shed vs {} in control", fault.shed, control.shed),
    ));
    result.checks.push(Check::new(
        "origin shield coalesces through the brownout",
        fault.coalesced > 0,
        format!("{} coalesced onto {} origin fetches", fault.coalesced, fault.origin_fetches),
    ));
    result.checks.push(Check::new(
        "retry volume is bounded by the shared budget",
        fault.budget_granted <= fault.budget_bound && fault.budget_denied > 0,
        format!(
            "{} granted <= bound {}, {} denied (converted to immediate escalation)",
            fault.budget_granted, fault.budget_bound, fault.budget_denied
        ),
    ));
    result.checks.push(Check::new(
        "same seed replays the event bit-identically",
        fault.fingerprint == replay.fingerprint,
        format!("fingerprint {:#018x} vs {:#018x}", fault.fingerprint, replay.fingerprint),
    ));

    result.notes.push(format!(
        "channel live from t=0 with a shared media-sequence timeline; join storm \
         peaks {PEAK_RATIO:.0}x at t={}s, brownout hits CDN A over [{}s, {}s); \
         failover and health gating are off so damage stays attributed; per-edge \
         capacity {} rps with {:.0}% join headroom, shield window {}s, retry \
         budget {}+{}/s per CDN; master seed {seed:#x}",
        KICKOFF.0,
        BROWNOUT_START.0,
        BROWNOUT_START.0 + BROWNOUT_LEN.0,
        CAPACITY.per_edge_rps,
        CAPACITY.join_headroom * 100.0,
        SHIELD_WINDOW.0,
        BUDGET.capacity,
        BUDGET.refill_per_sec,
    ));
    result.notes.push(
        "the retry-budget bound is analytic: granted <= capacity + refill x horizon \
         per CDN regardless of session count or arrival order; denials convert \
         would-be retries into immediate escalation instead of hammering the \
         browning-out CDN"
            .to_string(),
    );

    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE's acceptance seed: control silent, brownout localized,
    /// budget bound held — at seed 7 specifically.
    #[test]
    fn surge_scenario_passes_ground_truth_at_seed_7() {
        let result = run(7);
        assert!(result.all_passed(), "failed checks: {:?}", result.failures());
    }

    #[test]
    fn surge_scenario_is_deterministic() {
        let a = run(0x11FE_5EED);
        assert!(a.all_passed(), "failed checks: {:?}", a.failures());
        let b = run(0x11FE_5EED);
        assert_eq!(a.tables, b.tables);
    }
}

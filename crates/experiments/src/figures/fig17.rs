//! Fig 17: bitrate ladders chosen by the owner and ten syndicators for the
//! same video ID (iPads over WiFi).

use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Table;
use vmp_syndication::catalogue::{ladder_of, FIG17_LADDERS};

/// Runs the Fig 17 regeneration.
pub fn run() -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig17", "Fig 17: bitrate ladders of owner O and syndicators S1-S10");
    let mut table = Table::new(
        "Ladders for one video ID (kbps)",
        vec!["publisher", "rungs", "min", "max", "ladder"],
    );
    for (label, bitrates) in FIG17_LADDERS {
        let ladder = ladder_of(label).expect("static");
        table.row(vec![
            label.to_string(),
            ladder.len().to_string(),
            ladder.min().bitrate.0.to_string(),
            ladder.max().bitrate.0.to_string(),
            bitrates.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(" "),
        ]);
    }

    let owner = ladder_of("O").expect("static");
    let s1 = ladder_of("S1").expect("static");
    let s2 = ladder_of("S2").expect("static");
    let s9 = ladder_of("S9").expect("static");
    result.checks.push(Check::new(
        "fig17: owner uses 9 bitrates topping 8192 kbps",
        owner.len() == 9 && owner.max().bitrate.0 > 8192,
        format!("{} rungs, top {}", owner.len(), owner.max().bitrate),
    ));
    result.checks.push(Check::new(
        "fig17: S2 has only 3 bitrates, S9 has 14",
        s2.len() == 3 && s9.len() == 14,
        format!("S2: {}, S9: {}", s2.len(), s9.len()),
    ));
    let ratio = owner.max().bitrate.0 as f64 / s1.max().bitrate.0 as f64;
    result.checks.push(Check::in_range(
        "fig17: owner's top rung ≈7x S1's (just above 1024)",
        ratio,
        5.5,
        9.0,
    ));
    result.tables.push(table);
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn ladders_match_figure_shape() {
        let r = super::run();
        assert!(r.all_passed(), "{:?}", r.failures());
        assert_eq!(r.tables[0].rows.len(), 11);
    }
}

//! Fig 18: CDN-origin storage savings under different syndication models.

use crate::context::ReproContext;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Table;
use vmp_syndication::catalogue::CatalogueStudy;
use vmp_syndication::storage::storage_study;

/// Runs the Fig 18 regeneration.
pub fn run(_ctx: &ReproContext) -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig18", "Fig 18: storage savings under syndication models");
    let study = CatalogueStudy::paper_setting();
    let outcome = storage_study(&study);

    let mut table = Table::new(
        "Origin storage per common CDN (paper: 1916 TB total; 316 TB/16.5% @5%, 865 TB/45.2% @10%, 1257 TB/65.6% integrated)",
        vec!["CDN", "total TB", "saved @5% (TB / %)", "saved @10% (TB / %)", "integrated (TB / %)"],
    );
    for r in &outcome.per_cdn {
        table.row(vec![
            r.cdn.to_string(),
            format!("{:.0}", r.total.terabytes()),
            format!("{:.0} / {:.1}%", r.saved_5pct.terabytes(), r.pct(r.saved_5pct)),
            format!("{:.0} / {:.1}%", r.saved_10pct.terabytes(), r.pct(r.saved_10pct)),
            format!(
                "{:.0} / {:.1}%",
                r.saved_integrated.terabytes(),
                r.pct(r.saved_integrated)
            ),
        ]);
    }

    if let Some(r) = outcome.representative() {
        result.checks.push(Check::in_range(
            "fig18: total storage ≈1916 TB per common CDN",
            r.total.terabytes(),
            1700.0,
            2150.0,
        ));
        result.checks.push(Check::in_range("fig18: ≈16.5% saved @5% tolerance", r.pct(r.saved_5pct), 10.0, 24.0));
        result.checks.push(Check::in_range("fig18: ≈45.2% saved @10% tolerance", r.pct(r.saved_10pct), 38.0, 54.0));
        result.checks.push(Check::in_range(
            "fig18: ≈65.6% saved under integrated syndication",
            r.pct(r.saved_integrated),
            58.0,
            72.0,
        ));
        result.checks.push(Check::new(
            "fig18: savings monotone (5% ≤ 10% ≤ integrated)",
            r.saved_5pct <= r.saved_10pct && r.saved_10pct <= r.saved_integrated,
            "ordering holds",
        ));
    }
    result.tables.push(table);
    result.notes.push(format!(
        "Catalogue: {} titles x {:.2} h; owner (9 rungs) on A+B, S6 (7 rungs) on A+B+C, \
         S9 (14 rungs) on A+B+D — the §6 setting.",
        study.titles,
        study.title_duration.hours()
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ReproContext, Scale};

    #[test]
    #[ignore = "builds a quick ecosystem; run with --ignored or the repro binary"]
    fn storage_checks_pass() {
        let ctx = ReproContext::new(Scale::Quick);
        let r = run(&ctx);
        assert!(r.all_passed(), "{:?}", r.failures());
    }
}

//! Ablation experiments beyond the paper's artifacts.
//!
//! The paper's conclusion calls for work on "approaches to cope with
//! diversity and reduce management complexity"; these ablations probe the
//! design choices our reproduction makes explicit:
//!
//! * `abl-abr` — how much of the Fig 15 QoE gap is the ladder vs the ABR
//!   algorithm: every ABR family on both the owner's and syndicator's
//!   ladders, same network draws.
//! * `abl-dedup` — the Fig 18 dedup curve swept over tolerance, plus the
//!   exact-match-only baseline a conservative CDN would deploy.
//! * `abl-broker` — weighted vs QoE-aware brokering while one CDN degrades
//!   mid-study: what the Conviva-style control service buys.

use crate::result::{Check, ExperimentResult};
use vmp_abr::algorithm::{AbrAlgorithm, Bba, Bola, ThroughputRule};
use vmp_abr::network::{NetworkModel, NetworkProfile};
use vmp_analytics::report::{Series, Table};
use vmp_cdn::broker::{Broker, BrokerPolicy};
use vmp_cdn::strategy::{CdnAssignment, CdnScope, CdnStrategy};
use vmp_core::cdn::CdnName;
use vmp_core::content::ContentClass;
use vmp_core::geo::ConnectionType;
use vmp_core::ladder::BitrateLadder;
use vmp_core::units::Seconds;
use vmp_session::player::{PlaybackConfig, Player};
use vmp_stats::Rng;
use vmp_syndication::catalogue::{ladder_of, CatalogueStudy};
use vmp_syndication::storage::storage_study;

/// Sessions per (algorithm, ladder) cell.
const SESSIONS: usize = 120;

/// `abl-abr`: ABR families × Fig 17 ladders.
pub fn run_abr() -> ExperimentResult {
    let mut result =
        ExperimentResult::new("abl-abr", "Ablation: ABR algorithm vs ladder contribution to QoE");
    let (Some(owner_ladder), Some(s7_ladder)) = (ladder_of("O"), ladder_of("S7")) else {
        result.checks.push(Check::new(
            "abl-abr: static catalogue ladders present",
            false,
            "ladder_of(\"O\") / ladder_of(\"S7\") missing from the catalogue",
        ));
        return result;
    };
    let s7_top = s7_ladder.max().bitrate.0 as f64;
    let ladders = [("owner O", owner_ladder), ("syndicator S7", s7_ladder)];
    let algorithms: [(&str, Box<dyn AbrAlgorithm>); 3] = [
        ("throughput(0.8)", Box::new(ThroughputRule::default())),
        ("bba", Box::new(Bba::default())),
        ("bola", Box::new(Bola::default())),
    ];

    let mut table = Table::new(
        "Median avg-bitrate (kbps) / mean rebuffer ratio, WiFi quality 1.0",
        vec!["algorithm", "owner O", "syndicator S7"],
    );
    let mut owner_medians = Vec::new();
    for (algo_name, algo) in &algorithms {
        let mut cells = Vec::new();
        for (_, ladder) in &ladders {
            let mut bitrates = Vec::with_capacity(SESSIONS);
            let mut rebuffers = Vec::with_capacity(SESSIONS);
            for i in 0..SESSIONS {
                let mut rng = Rng::seed_from(0xAB1).fork(i as u64);
                let network =
                    NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Wifi, 1.0));
                let config = PlaybackConfig::vod(
                    ladder.clone(),
                    Seconds::from_minutes(40.0),
                    Seconds::from_minutes(20.0),
                );
                // `vod` configs always validate; a constructor error would
                // only mean the static setup above is broken.
                let Ok(mut player) = Player::new(config, network, algo.as_ref()) else {
                    continue;
                };
                let out = player.play(CdnName::A, &mut rng);
                bitrates.push(out.qoe.avg_bitrate.0 as f64);
                rebuffers.push(out.qoe.rebuffer_ratio());
            }
            bitrates.sort_by(|a, b| a.total_cmp(b));
            let median = vmp_stats::desc::quantile_sorted(&bitrates, 0.5);
            let mean_rebuffer = rebuffers.iter().sum::<f64>() / rebuffers.len() as f64;
            cells.push(format!("{median:.0} / {mean_rebuffer:.4}"));
            if cells.len() == 1 {
                owner_medians.push((algo_name.to_string(), median));
            }
        }
        let mut row = vec![algo_name.to_string()];
        row.extend(cells);
        table.row(row);
    }
    result.tables.push(table);

    // The ladder cap binds for S7 under *every* algorithm: the finding that
    // the management-plane choice (ladder) dominates the control-plane
    // choice (ABR) for the Fig 15 gap.
    for (algo_name, owner_median) in &owner_medians {
        result.checks.push(Check::new(
            format!("{algo_name}: owner's ladder beats S7's ceiling"),
            *owner_median > s7_top,
            format!("owner median {owner_median:.0} vs S7 top {s7_top:.0}"),
        ));
    }
    result.notes.push(
        "Every ABR family exceeds the syndicator ladder's ceiling on the owner ladder: the \
         §6 bitrate gap is a management-plane artifact, not a control-plane one."
            .into(),
    );
    result
}

/// `abl-dedup`: tolerance sweep of the Fig 18 dedup curve.
pub fn run_dedup() -> ExperimentResult {
    let mut result =
        ExperimentResult::new("abl-dedup", "Ablation: dedup savings vs bitrate tolerance");
    let study = CatalogueStudy::paper_setting();
    let outcome = storage_study(&study);
    let Some(base) = outcome.representative().cloned() else {
        result.checks.push(Check::new(
            "abl-dedup: representative CDN present",
            false,
            "storage study produced no CDN shared by every participant",
        ));
        return result;
    };

    // Re-run the ledger at a sweep of tolerances.
    let mut series = Series::new("Savings (% of origin storage) vs tolerance", "tolerance");
    let mut points = Vec::new();
    let mut prev = -1.0;
    let mut monotone = true;
    for pct in [0u32, 1, 2, 3, 5, 8, 10, 15, 20, 30] {
        let saved = sweep_savings(&study, pct as f64 / 100.0);
        if saved < prev {
            monotone = false;
        }
        prev = saved;
        points.push((format!("{pct}%"), saved));
    }
    series.line("single-linkage dedup", points);
    series.line(
        "integrated syndication",
        vec![("0%".into(), base.pct(base.saved_integrated))],
    );
    result.series.push(series);

    result.checks.push(Check::new(
        "abl-dedup: savings monotone over the sweep",
        monotone,
        "single-linkage clustering guarantees monotonicity",
    ));
    let exact_only = sweep_savings(&study, 0.0);
    result.checks.push(Check::new(
        "abl-dedup: exact-match-only baseline saves little",
        exact_only < 10.0,
        format!("{exact_only:.1}% at zero tolerance"),
    ));
    let at_10 = sweep_savings(&study, 0.10);
    let at_30 = sweep_savings(&study, 0.30);
    let integrated = base.pct(base.saved_integrated);
    result.checks.push(Check::new(
        "abl-dedup: realistic tolerances (≤10%) stay below integrated syndication",
        at_10 < integrated,
        format!("{at_10:.1}% vs {integrated:.1}%"),
    ));
    result.checks.push(Check::new(
        "abl-dedup: loose tolerance over-merges (collapses the owner's own rungs)",
        at_30 > integrated,
        format!(
            "{at_30:.1}% 'saved' at 30% tolerance exceeds integrated's {integrated:.1}% —              it merges distinct quality levels, which no publisher would accept"
        ),
    ));
    result.notes.push(
        "Tolerance is a quality/storage dial: past ~10% the dedup begins merging rungs a          single publisher intentionally keeps distinct."
            .into(),
    );
    result
}

fn sweep_savings(study: &CatalogueStudy, tolerance: f64) -> f64 {
    use vmp_cdn::origin::{ContentKey, OriginEntry, OriginStore};
    use vmp_core::ids::VideoId;
    // One title is enough: the ledger is title-homogeneous.
    let mut store = OriginStore::new(CdnName::A);
    for p in study.participants() {
        for rung in p.ladder.rungs() {
            store.push(OriginEntry {
                publisher: p.publisher,
                content: ContentKey { owner: study.owner.publisher, video: VideoId::new(0) },
                bitrate: rung.bitrate,
                bytes: rung.bitrate.bytes_for(study.title_duration),
            });
        }
    }
    store.savings_percent(store.dedup_savings(tolerance))
}

/// `abl-live`: capture-to-eyeball latency per protocol (the §4.1
/// trade-off).
///
/// §4.1: publishers abandoned RTMP *despite* its lower live latency —
/// HTTP protocols "may add a few seconds of encoding and packaging delay to
/// live streams". This ablation quantifies the full glass-to-glass budget:
/// packaging latency + one chunk of encode buffering + the player's startup
/// buffer.
pub fn run_live_latency() -> ExperimentResult {
    use vmp_core::protocol::StreamingProtocol;
    use vmp_packaging::transcode::live_latency;

    let mut result = ExperimentResult::new(
        "abl-live",
        "Ablation: live glass-to-glass latency budget per protocol",
    );
    let mut table = Table::new(
        "Capture-to-eyeball latency (seconds)",
        vec!["protocol", "package+chunk", "player startup", "total"],
    );
    let chunk = Seconds(4.0);
    let startup = Seconds(4.0); // one chunk buffered before playout
    let mut totals = Vec::new();
    for proto in [
        StreamingProtocol::Rtmp,
        StreamingProtocol::Dash,
        StreamingProtocol::SmoothStreaming,
        StreamingProtocol::Hls,
    ] {
        let pkg = live_latency(proto, chunk);
        let total = pkg.0 + startup.0;
        totals.push((proto, total));
        table.row(vec![
            proto.label().to_string(),
            format!("{:.1}", pkg.0),
            format!("{:.1}", startup.0),
            format!("{total:.1}"),
        ]);
    }
    result.tables.push(table);

    let latency_of = |proto: StreamingProtocol| {
        totals.iter().find(|(p, _)| *p == proto).map_or(f64::NAN, |(_, t)| *t)
    };
    let rtmp = latency_of(StreamingProtocol::Rtmp);
    let hls = latency_of(StreamingProtocol::Hls);
    result.checks.push(Check::new(
        "abl-live: RTMP is several seconds faster end-to-end",
        hls > rtmp + 4.0,
        format!("HLS {hls:.1}s vs RTMP {rtmp:.1}s"),
    ));
    result.notes.push(
        "The latency RTMP gives up is what publishers traded for middlebox compatibility,          CDN scalability and device reach (the §4.1 explanation of RTMP's disappearance)."
            .into(),
    );
    result
}

/// `abl-broker`: weighted vs QoE-aware brokering under CDN degradation.
pub fn run_broker() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "abl-broker",
        "Ablation: QoE-aware brokering vs static weights under CDN degradation",
    );
    let setup = BitrateLadder::from_bitrates(&[400, 900, 1800, 3500, 6500]).and_then(|ladder| {
        let strategy = CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 2.0, scope: CdnScope::All },
            CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
        ])?;
        Ok((ladder, strategy))
    });
    let Ok((ladder, strategy)) = setup else {
        result.checks.push(Check::new(
            "abl-broker: static ladder and strategy valid",
            false,
            "construction of the fixed two-CDN setup failed",
        ));
        return result;
    };

    let mut table = Table::new(
        "Mean avg-bitrate (kbps) over 200 sessions; CDN A degraded to 0.35x",
        vec!["policy", "mean bitrate", "share on degraded CDN A"],
    );
    let mut results = Vec::new();
    for policy in [BrokerPolicy::Weighted, BrokerPolicy::QoeAware] {
        let broker = Broker::new(policy);
        let abr = ThroughputRule::default();
        let mut rng = Rng::seed_from(0xB20);
        let mut total_bitrate = 0.0;
        let mut on_a = 0usize;
        let sessions = 200;
        for _ in 0..sessions {
            // A non-empty strategy always selects; bail out of the arm if
            // the broker ever declines rather than panicking mid-figure.
            let Some(cdn) = broker.select(&strategy, ContentClass::Vod, &mut rng) else {
                break;
            };
            // CDN A has degraded; B is healthy.
            let quality = if cdn == CdnName::A { 0.35 } else { 1.1 };
            let network = NetworkModel::new(
                NetworkProfile::for_connection(ConnectionType::Wifi, 1.0).scaled(quality),
            );
            let config = PlaybackConfig::vod(
                ladder.clone(),
                Seconds::from_minutes(30.0),
                Seconds::from_minutes(8.0),
            );
            let Ok(mut player) = Player::new(config, network, &abr) else {
                continue;
            };
            let out = player.play(cdn, &mut rng);
            if cdn == CdnName::A {
                on_a += 1;
            }
            total_bitrate += out.qoe.avg_bitrate.0 as f64;
            let score = out.qoe.avg_bitrate.0 as f64 * (1.0 - out.qoe.rebuffer_ratio());
            broker.report(cdn, score);
        }
        let mean = total_bitrate / sessions as f64;
        let share_a = 100.0 * on_a as f64 / sessions as f64;
        table.row(vec![
            format!("{policy:?}"),
            format!("{mean:.0}"),
            format!("{share_a:.0}%"),
        ]);
        results.push((policy, mean, share_a));
    }
    result.tables.push(table);

    let [(_, weighted, _), (_, qoe_aware, qoe_share_a)] = results.as_slice() else {
        result.checks.push(Check::new(
            "abl-broker: both policies produced results",
            false,
            format!("{} policy arms completed", results.len()),
        ));
        return result;
    };
    result.checks.push(Check::new(
        "abl-broker: QoE-aware brokering beats static weights on a degraded CDN",
        *qoe_aware > weighted * 1.15,
        format!("{qoe_aware:.0} vs {weighted:.0} kbps mean"),
    ));
    result.checks.push(Check::new(
        "abl-broker: QoE-aware routes most traffic off the degraded CDN",
        *qoe_share_a < 35.0,
        format!("{qoe_share_a:.0}% of sessions stayed on CDN A"),
    ));
    result
}

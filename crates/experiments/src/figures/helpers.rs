//! Shared plumbing for figure drivers.
//!
//! Everything here runs on the columnar kernel: a figure names a
//! [`DimSpec`] instead of a row extractor, and any [`SegmentSource`] —
//! the full store or a masked view — can back a series.

use std::fmt::Display;
use vmp_analytics::columns::{self, DimSpec, SegmentSource, ShareMetric};
use vmp_analytics::report::Series;

/// Which share to plot over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareKind {
    /// % of publishers supporting the value (Fig 2(a), 7, 11(a)).
    Publishers,
    /// % of view-hours carried by the value (Fig 2(b), 6(a), 11(b)).
    ViewHours,
    /// % of views carried by the value (Fig 6(c)).
    Views,
}

/// Minimum share of a publisher's view-hours for a dimension value to count
/// as "supported" (filters the rare device-fallback views).
pub const SUPPORT_FLOOR: f64 = 0.01;

/// Builds a per-snapshot share series for a fixed set of dimension values.
/// Snapshots are rolled up in parallel (one segment per worker) and lines
/// assembled in fixed value/snapshot order.
pub fn share_series<S, V>(
    source: &S,
    title: &str,
    values: &[V],
    spec: DimSpec<V>,
    kind: ShareKind,
) -> Series
where
    S: SegmentSource,
    V: Ord + Clone + Display + Send,
{
    let metric = match kind {
        ShareKind::Publishers => ShareMetric::Publishers { floor: SUPPORT_FLOOR },
        ShareKind::ViewHours => ShareMetric::ViewHours,
        ShareKind::Views => ShareMetric::Views,
    };
    let per_snapshot = columns::share_by_snapshot(source, spec, metric);
    let mut series = Series::new(title, "snapshot");
    for value in values {
        let points = per_snapshot
            .iter()
            .map(|(snapshot, shares)| {
                (snapshot.to_string(), shares.get(value).copied().unwrap_or(0.0))
            })
            .collect();
        series.line(value.to_string(), points);
    }
    series
}

/// Builds the three per-publisher-count artifacts shared by Figs 3, 9, 12:
/// (a) count histogram by % publishers / % view-hours,
/// (b) count distribution bucketed by publisher view-hours,
/// (c) average and weighted-average count per snapshot.
pub fn counts_figure<S: SegmentSource, V: Ord>(
    source: &S,
    dim_name: &str,
    spec: DimSpec<V>,
) -> (vmp_analytics::report::Table, vmp_analytics::report::Table, Series) {
    use vmp_analytics::perpub::{
        count_histogram, counts_by_size_bucket, counts_per_publisher, CountsOverTime,
    };
    use vmp_analytics::report::Table;

    let last =
        source.live_metas().last().map(|m| m.snapshot).expect("store has data");
    let counts = counts_per_publisher(source, last, spec, SUPPORT_FLOOR);

    let mut hist_table = Table::new(
        format!("(a) number of {dim_name} per publisher (last snapshot)"),
        vec!["count", "% of publishers", "% of view-hours"],
    );
    for (count, (pubs, vh)) in count_histogram(&counts) {
        hist_table.row(vec![count.to_string(), format!("{pubs:.1}"), format!("{vh:.1}")]);
    }

    let mut bucket_table = Table::new(
        format!("(b) number of {dim_name} bucketed by publisher view-hours"),
        vec!["bucket", "% of publishers", "count distribution within bucket"],
    );
    for (bucket, (share, dist)) in
        counts_by_size_bucket(&counts, vmp_synth::trends::X_VIEW_HOURS)
    {
        let label = if bucket == 0 {
            "<X".to_string()
        } else {
            format!("10^{}X..10^{}X", bucket - 1, bucket)
        };
        let dist_text = dist
            .iter()
            .map(|(c, p)| format!("{c}:{p:.0}%"))
            .collect::<Vec<_>>()
            .join(" ");
        bucket_table.row(vec![label, format!("{share:.1}"), dist_text]);
    }

    let over_time = CountsOverTime::compute(source, spec, SUPPORT_FLOOR);
    let mut series = Series::new(
        format!("(c) average number of {dim_name} per publisher over time"),
        "snapshot",
    );
    series.line(
        "average",
        over_time.points.iter().map(|(s, a, _)| (s.to_string(), *a)).collect(),
    );
    series.line(
        "weighted average",
        over_time.points.iter().map(|(s, _, w)| (s.to_string(), *w)).collect(),
    );

    (hist_table, bucket_table, series)
}

/// Extracts `(count → (%pubs, %vh))` back out of a counts histogram table.
pub fn histogram_entry(table: &vmp_analytics::report::Table, count: usize) -> Option<(f64, f64)> {
    let row = table.rows.iter().find(|r| r[0] == count.to_string())?;
    Some((row[1].parse().ok()?, row[2].parse().ok()?))
}

/// Share of publishers (and of view-hours) with count ≥ `min` in a counts
/// histogram table.
pub fn share_with_at_least(table: &vmp_analytics::report::Table, min: usize) -> (f64, f64) {
    let mut pubs = 0.0;
    let mut vh = 0.0;
    for row in &table.rows {
        if row[0].parse::<usize>().map(|c| c >= min).unwrap_or(false) {
            pubs += row[1].parse::<f64>().unwrap_or(0.0);
            vh += row[2].parse::<f64>().unwrap_or(0.0);
        }
    }
    (pubs, vh)
}

/// First and last y values of a named line in a series.
pub fn endpoints(series: &Series, line: &str) -> Option<(f64, f64)> {
    let (_, points) = series.lines.iter().find(|(name, _)| name == line)?;
    Some((points.first()?.1, points.last()?.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_analytics::store::ViewStore;
    use vmp_core::protocol::StreamingProtocol;

    #[test]
    fn endpoints_reads_series() {
        let mut s = Series::new("t", "x");
        s.line("HLS", vec![("a".into(), 80.0), ("b".into(), 91.0)]);
        assert_eq!(endpoints(&s, "HLS"), Some((80.0, 91.0)));
        assert_eq!(endpoints(&s, "DASH"), None);
    }

    #[test]
    fn share_series_runs_on_empty_store() {
        let store = ViewStore::ingest(vec![]);
        let s = share_series(
            &store,
            "t",
            &[StreamingProtocol::Hls],
            vmp_analytics::columns::PROTOCOL,
            ShareKind::ViewHours,
        );
        assert_eq!(s.lines.len(), 1);
        assert!(s.lines[0].1.is_empty());
    }
}

//! Fig 2: streaming protocols across publishers and view-hours, over time.
//!
//! (a) % of publishers supporting each protocol; (b) % of view-hours per
//! protocol; (c) same as (b) with the large DASH-first publishers removed.
//! Plus §4.1's RTMP aside (1.6% → 0.1% of view-hours).

use crate::context::ReproContext;
use crate::figures::helpers::{endpoints, share_series, ShareKind};
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::PROTOCOL;
use vmp_core::protocol::StreamingProtocol;

/// Runs the Fig 2 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig02", "Fig 2: protocol prevalence over 27 months");
    let protocols = [
        StreamingProtocol::Hls,
        StreamingProtocol::Dash,
        StreamingProtocol::SmoothStreaming,
        StreamingProtocol::Hds,
        StreamingProtocol::Rtmp,
    ];

    let a = share_series(
        &ctx.store,
        "Fig 2(a): % of publishers supporting each protocol",
        &protocols,
        PROTOCOL,
        ShareKind::Publishers,
    );
    let b = share_series(
        &ctx.store,
        "Fig 2(b): % of view-hours by protocol",
        &protocols,
        PROTOCOL,
        ShareKind::ViewHours,
    );
    let excluded = ctx.dash_first_publishers();
    let store_wo = ctx.store_excluding(&excluded);
    let c = share_series(
        &store_wo,
        "Fig 2(c): % of view-hours by protocol, excluding the large DASH-first publishers",
        &protocols,
        PROTOCOL,
        ShareKind::ViewHours,
    );

    // Checks against the paper's endpoints.
    if let Some((_, hls_end)) = endpoints(&a, "HLS") {
        result.checks.push(Check::in_range("fig2a: HLS ≈91% of publishers at end", hls_end, 83.0, 97.0));
    }
    if let Some((dash_start, dash_end)) = endpoints(&a, "DASH") {
        result.checks.push(Check::in_range("fig2a: DASH ≈10% of publishers at start", dash_start, 4.0, 20.0));
        result.checks.push(Check::in_range("fig2a: DASH ≈43% of publishers at end", dash_end, 34.0, 52.0));
    }
    if let Some((hds_start, hds_end)) = endpoints(&a, "HDS") {
        result.checks.push(Check::new(
            "fig2a: HDS declines",
            hds_end < hds_start,
            format!("{hds_start:.1}% → {hds_end:.1}%"),
        ));
        result.checks.push(Check::in_range("fig2a: HDS ≈19% at end", hds_end, 12.0, 27.0));
    }
    if let Some((dash_vh_start, dash_vh_end)) = endpoints(&b, "DASH") {
        result.checks.push(Check::in_range("fig2b: DASH ≈3% of VH at start", dash_vh_start, 0.0, 9.0));
        result.checks.push(Check::in_range("fig2b: DASH ≈38% of VH at end", dash_vh_end, 27.0, 50.0));
    }
    if let Some((_, hls_vh_end)) = endpoints(&b, "HLS") {
        result.checks.push(Check::in_range("fig2b: HLS ≈38-45% of VH at end", hls_vh_end, 30.0, 55.0));
    }
    if let Some((_, dash_wo_end)) = endpoints(&c, "DASH") {
        result.checks.push(Check::in_range(
            "fig2c: DASH <5% of VH without the large publishers",
            dash_wo_end,
            0.0,
            8.0,
        ));
    }
    if let Some((rtmp_start, rtmp_end)) = endpoints(&b, "RTMP") {
        result.checks.push(Check::in_range("§4.1: RTMP ≈1.6% of VH at start", rtmp_start, 0.1, 5.0));
        result.checks.push(Check::in_range("§4.1: RTMP ≈0.1% of VH at end", rtmp_end, 0.0, 1.0));
    }

    result.series.push(a);
    result.series.push(b);
    result.series.push(c);
    result.notes.push(format!(
        "{} large publishers are excluded in (c) (the paper's confidential N).",
        excluded.len()
    ));
    result
}

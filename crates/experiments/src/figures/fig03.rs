//! Fig 3: number of streaming protocols per publisher.

use crate::context::ReproContext;
use crate::figures::helpers::{counts_figure, endpoints, share_with_at_least};
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::PROTOCOL;

/// Runs the Fig 3 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig03", "Fig 3: protocols per publisher");
    let (hist, buckets, series) = counts_figure(&ctx.store, "protocols", PROTOCOL);

    // Paper: 38% of publishers use 1 protocol but account for <10% of VH;
    // multi-protocol publishers carry >90% of VH; averages just under 2
    // (plain) and ≈2.2 (weighted).
    let (one_pubs, one_vh) = crate::figures::helpers::histogram_entry(&hist, 1).unwrap_or((0.0, 0.0));
    result.checks.push(Check::in_range("fig3a: ≈38% of publishers use 1 protocol", one_pubs, 22.0, 50.0));
    result.checks.push(Check::in_range("fig3a: 1-protocol publishers carry <10% of VH", one_vh, 0.0, 12.0));
    let (multi_pubs, multi_vh) = share_with_at_least(&hist, 2);
    result.checks.push(Check::new(
        "§4.4: >90% of VH from multi-protocol publishers",
        multi_vh > 88.0,
        format!("{multi_vh:.1}% of VH from {multi_pubs:.1}% of publishers"),
    ));
    if let (Some((_, avg_end)), Some((_, weighted_end))) =
        (endpoints(&series, "average"), endpoints(&series, "weighted average"))
    {
        result.checks.push(Check::in_range("fig3c: plain average a bit below 2", avg_end, 1.4, 2.3));
        result.checks.push(Check::in_range("fig3c: weighted average ≈2.2", weighted_end, 1.9, 2.8));
        result.checks.push(Check::new(
            "fig3c: weighted average above plain average",
            weighted_end > avg_end,
            format!("weighted {weighted_end:.2} vs plain {avg_end:.2}"),
        ));
    }

    result.tables.push(hist);
    result.tables.push(buckets);
    result.series.push(series);
    result
}

//! `resilience` — QoE under a seeded CDN brownout, failover off vs on.
//!
//! The paper's management planes exist because incidents happen: §4.3's
//! multi-CDN strategies and the Conviva-style control plane only pay off
//! when a CDN degrades. This scenario replays the deterministic
//! [`FaultProfile::cdn_brownout`] plan against CDN A (throughput collapse,
//! an edge-cache flush, an origin error burst, and a half-outage) over a
//! two-CDN weighted strategy, and compares the same staggered session
//! population with broker failover + circuit-breaker health gating
//! disabled versus enabled.
//!
//! Everything is pure-seeded: the same `--seed` replays bit-identical
//! incidents, retries, and failovers, which the determinism check asserts
//! by fingerprinting two independent runs of the enabled arm.

use std::collections::BTreeMap;

use crate::result::{Check, ExperimentResult};
use vmp_abr::algorithm::ThroughputRule;
use vmp_abr::network::{NetworkModel, NetworkProfile};
use vmp_analytics::report::{Series, Table};
use vmp_cdn::broker::{Broker, BrokerPolicy};
use vmp_cdn::edge::EdgeCluster;
use vmp_cdn::routing::Router;
use vmp_cdn::strategy::{CdnAssignment, CdnScope, CdnStrategy};
use vmp_core::cdn::CdnName;
use vmp_core::geo::ConnectionType;
use vmp_core::ladder::BitrateLadder;
use vmp_core::units::{Bytes, Seconds};
use vmp_faults::{BreakerConfig, FaultInjector, FaultProfile, RetryPolicy};
use vmp_monitor::HealthMonitor;
use vmp_session::hooks::{CompletionSink, SessionEnd};
use vmp_session::player::{
    infrastructure_fn, ExitCause, MultiCdnContext, PlaybackConfig, Player,
};
use vmp_stats::Rng;

/// Sessions per arm, staggered across the fault-plan horizon.
const SESSIONS: usize = 240;

/// Edge regions per CDN (sessions rotate through them).
const REGIONS: usize = 4;

/// One arm of the comparison, aggregated over all sessions.
struct ArmStats {
    label: &'static str,
    fatal: u32,
    rebuffer_ratios: Vec<f64>,
    bitrates: Vec<f64>,
    retries: u64,
    timeouts: u64,
    cdn_switches: u64,
    /// Per-offset-bucket fatal counts (bucket = 300 s of fault timeline).
    fatal_by_bucket: Vec<f64>,
    /// FNV-1a over every session's outcome summary: byte-identical runs
    /// produce identical fingerprints.
    fingerprint: u64,
    /// Alerts the streaming health plane raised over this arm's completion
    /// stream (passive tap — the monitor never perturbs sessions).
    monitor_alerts: usize,
    /// Top-ranked culprit behind those alerts, if any.
    monitor_culprit: Option<String>,
}

impl ArmStats {
    fn fatal_rate(&self) -> f64 {
        self.fatal as f64 / SESSIONS as f64
    }

    fn mean_rebuffer(&self) -> f64 {
        self.rebuffer_ratios.iter().sum::<f64>() / self.rebuffer_ratios.len() as f64
    }

    fn mean_bitrate(&self) -> f64 {
        self.bitrates.iter().sum::<f64>() / self.bitrates.len() as f64
    }
}

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn ladder() -> BitrateLadder {
    BitrateLadder::from_bitrates(&[400, 800, 1600, 3200, 6400]).expect("static ladder")
}

fn strategy() -> CdnStrategy {
    CdnStrategy::new(vec![
        CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::All },
        CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
    ])
    .expect("valid strategy")
}

/// Runs one arm: the full staggered session population against fresh
/// infrastructure, with the given failover/health-gate switches. `faulted`
/// selects the brownout plan versus a clean (no-fault) baseline.
fn run_arm(
    seed: u64,
    label: &'static str,
    faulted: bool,
    failover_enabled: bool,
    health_gate: bool,
) -> ArmStats {
    let profile = FaultProfile::cdn_brownout(CdnName::A);
    let horizon = profile.horizon();
    let injector = faulted.then(|| FaultInjector::new(profile));
    let strategy = strategy();
    let broker = Broker::with_breaker(BrokerPolicy::Weighted, BreakerConfig::default());
    let routers: BTreeMap<CdnName, Router> = strategy
        .cdns()
        .iter()
        .map(|c| (*c, Router::for_cdn(*c, 8)))
        .collect();
    let mut edges: BTreeMap<CdnName, EdgeCluster> = strategy
        .cdns()
        .iter()
        .map(|c| (*c, EdgeCluster::new(REGIONS, Bytes(2_000_000_000))))
        .collect();
    let abr = ThroughputRule::default();

    let buckets = (horizon.0 / 300.0).ceil() as usize;
    let mut stats = ArmStats {
        label,
        fatal: 0,
        rebuffer_ratios: Vec::with_capacity(SESSIONS),
        bitrates: Vec::with_capacity(SESSIONS),
        retries: 0,
        timeouts: 0,
        cdn_switches: 0,
        fatal_by_bucket: vec![0.0; buckets.max(1)],
        fingerprint: 0xcbf2_9ce4_8422_2325,
        monitor_alerts: 0,
        monitor_culprit: None,
    };

    let mut ends: Vec<SessionEnd> = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS {
        let mut rng = Rng::seed_from(seed ^ 0x5111_E27C).fork(i as u64);
        let network =
            NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Wifi, 1.0));
        let offset = Seconds(horizon.0 * i as f64 / SESSIONS as f64);
        let mut config =
            PlaybackConfig::vod(ladder(), Seconds::from_minutes(20.0), Seconds::from_minutes(5.0));
        config.start_offset = offset;
        // The armed timeout + bounded-retry policy is what a resilient
        // player ships; the clean baseline keeps the stock policy so it
        // matches historical fault-free behaviour exactly.
        if faulted {
            config.retry = RetryPolicy::resilient();
        }
        let mut player = Player::new(config, network, &abr).expect("valid config");
        let mut infra = infrastructure_fn(&routers, &mut edges, i % REGIONS, injector.as_ref());
        let mut ctx = MultiCdnContext {
            broker: &broker,
            strategy: &strategy,
            failure_probability: 0.0, // incidents come from the fault plan only
            failover_enabled,
            health_gate,
            faults: injector.as_ref(),
            retry_budget: None,
            infrastructure: &mut infra,
        };
        let out = player.play_multi_cdn(&mut ctx, &mut rng);

        if out.exit == ExitCause::FatalCdnFailure {
            stats.fatal += 1;
            let bucket = ((offset.0 / 300.0) as usize).min(stats.fatal_by_bucket.len() - 1);
            stats.fatal_by_bucket[bucket] += 1.0;
        }
        stats.rebuffer_ratios.push(out.qoe.rebuffer_ratio());
        stats.bitrates.push(out.qoe.avg_bitrate.0 as f64);
        stats.retries += out.retries as u64;
        stats.timeouts += out.timeouts as u64;
        stats.cdn_switches += out.qoe.cdn_switches as u64;
        let summary = format!(
            "{i}:{:?}:{}:{}:{}:{:.6}:{:.6}:{:?}",
            out.exit,
            out.qoe.avg_bitrate.0,
            out.retries,
            out.timeouts,
            out.qoe.rebuffer_time.0,
            out.qoe.startup_delay.0,
            out.cdns,
        );
        stats.fingerprint = fnv1a(stats.fingerprint, summary.as_bytes());
        ends.push(SessionEnd::new(out).in_region(i % REGIONS));
    }

    // Passive health-plane tap: stream the completions into a monitor in
    // fault-clock end order (the order a central collector sees). With a
    // 20-minute session length the first completions already carry fault
    // damage, so no pre-incident baseline exists and the faulted arms are
    // reported, not graded — the `monitor` scenario does the grading with a
    // population shaped for it. The clean arm must stay silent.
    let mut order: Vec<usize> = (0..ends.len()).collect();
    order.sort_by(|a, b| {
        ends[*a]
            .end_clock()
            .0
            .partial_cmp(&ends[*b].end_clock().0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    let mut monitor = HealthMonitor::with_defaults();
    for i in order {
        monitor.on_session_end(&ends[i]);
    }
    monitor.finish();
    stats.monitor_alerts = monitor.alerts().len();
    stats.monitor_culprit = monitor.culprits().first().map(|c| c.describe());
    stats
}

/// Runs the scenario for a master seed (`repro --seed N`; the ecosystem
/// default otherwise).
pub fn run(seed: u64) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "resilience",
        "Scenario: CDN brownout with failover disabled vs enabled (seeded fault plan)",
    );

    let disabled = run_arm(seed, "failover off", true, false, false);
    let enabled = run_arm(seed, "failover on", true, true, true);
    let replay = run_arm(seed, "failover on (replay)", true, true, true);
    let clean = run_arm(seed, "no faults", false, true, true);

    let mut table = Table::new(
        "Brownout on CDN A: weighted 2-CDN strategy, 240 staggered sessions per arm",
        vec![
            "arm",
            "fatal exits",
            "fatal rate",
            "mean rebuffer ratio",
            "mean bitrate (kbps)",
            "retries",
            "timeouts",
            "failovers",
        ],
    );
    for arm in [&disabled, &enabled, &clean] {
        table.row(vec![
            arm.label.to_string(),
            arm.fatal.to_string(),
            format!("{:.3}", arm.fatal_rate()),
            format!("{:.4}", arm.mean_rebuffer()),
            format!("{:.0}", arm.mean_bitrate()),
            arm.retries.to_string(),
            arm.timeouts.to_string(),
            arm.cdn_switches.to_string(),
        ]);
    }
    result.tables.push(table.clone());

    let mut health = Table::new(
        "Health-plane tap: alerts over each arm's completion stream",
        vec!["arm", "alerts", "top culprit"],
    );
    for arm in [&disabled, &enabled, &clean] {
        health.row(vec![
            arm.label.to_string(),
            arm.monitor_alerts.to_string(),
            arm.monitor_culprit.clone().unwrap_or_else(|| "-".to_string()),
        ]);
    }
    result.tables.push(health);

    let mut series = Series::new(
        "Fatal sessions per start-offset bucket (fault-timeline seconds)",
        "offset bucket",
    );
    for arm in [&disabled, &enabled] {
        let points: Vec<(String, f64)> = arm
            .fatal_by_bucket
            .iter()
            .enumerate()
            .map(|(b, n)| (format!("{}s", b * 300), *n))
            .collect();
        series.line(arm.label, points);
    }
    result.series.push(series);

    result.checks.push(Check::new(
        "brownout bites with failover disabled",
        disabled.fatal > 0,
        format!("{} fatal exits without failover", disabled.fatal),
    ));
    result.checks.push(Check::new(
        "failover reduces fatal-exit rate",
        enabled.fatal < disabled.fatal,
        format!(
            "fatal rate {:.3} (off) vs {:.3} (on)",
            disabled.fatal_rate(),
            enabled.fatal_rate()
        ),
    ));
    result.checks.push(Check::new(
        "failover preserves delivered bitrate",
        enabled.mean_bitrate() > disabled.mean_bitrate(),
        format!(
            "mean bitrate {:.0} kbps (off) vs {:.0} kbps (on)",
            disabled.mean_bitrate(),
            enabled.mean_bitrate()
        ),
    ));
    result.checks.push(Check::new(
        "enabled arm actually fails over",
        enabled.cdn_switches > 0,
        format!("{} broker failovers", enabled.cdn_switches),
    ));
    result.checks.push(Check::new(
        "same seed replays bit-identically",
        enabled.fingerprint == replay.fingerprint,
        format!(
            "fingerprint {:#018x} vs {:#018x}",
            enabled.fingerprint, replay.fingerprint
        ),
    ));
    result.checks.push(Check::new(
        "fault-free baseline is clean",
        clean.fatal == 0 && clean.retries == 0 && clean.timeouts == 0,
        format!(
            "clean arm: {} fatal, {} retries, {} timeouts",
            clean.fatal, clean.retries, clean.timeouts
        ),
    ));
    result.checks.push(Check::new(
        "health plane stays silent on the fault-free arm",
        clean.monitor_alerts == 0,
        format!("{} alerts over the clean completion stream", clean.monitor_alerts),
    ));
    result.checks.push(Check::new(
        "health plane localizes the brownout without failover",
        disabled.monitor_alerts > 0
            && disabled.monitor_culprit.as_deref().is_some_and(|c| c.starts_with("cdn=A")),
        disabled.monitor_culprit.clone().unwrap_or_else(|| "no culprit ranked".to_string()),
    ));

    result.notes.push(format!(
        "fault plan: FaultProfile::cdn_brownout(A) — degraded throughput + origin error \
         burst over [300, 1500)s, edge-cache flush at 300s, hard outage over [720, 1080)s; \
         sessions staggered across the {:.0}s horizon; master seed {seed:#x}",
        FaultProfile::cdn_brownout(CdnName::A).horizon().0
    ));
    result.notes.push(
        "rebuffer ratios are not comparable across arms: fatal sessions barely play, and \
         armed timeouts convert slow top-rung downloads into fast low-rung refetches, so \
         delivered bitrate is the robust damage signal"
            .to_string(),
    );

    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_checks_pass_and_replay_is_deterministic() {
        let a = run(0x5EED_CAFE);
        assert!(a.all_passed(), "failed checks: {:?}", a.failures());
        let b = run(0x5EED_CAFE);
        // Tables embed every aggregate; equal tables mean an identical run.
        assert_eq!(a.tables, b.tables);
    }
}

//! The per-artifact drivers. One module per paper table/figure.

pub mod ablations;
pub mod helpers;
pub mod live_event;
pub mod monitor;
pub mod resilience;

pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod summary;
pub mod tab1;

//! Fig 9: number of platforms supported per publisher.

use crate::context::ReproContext;
use crate::figures::helpers::{counts_figure, endpoints, share_with_at_least};
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::PLATFORM;

/// Runs the Fig 9 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig09", "Fig 9: platforms per publisher");
    let (hist, buckets, series) = counts_figure(&ctx.store, "platforms", PLATFORM);

    // Paper: >85% of publishers support more than one platform and those
    // carry >95% of VH; ≈30% support all five and carry >60% of VH;
    // weighted average ≈4.5 at the end, plain average >3; growth ≈48%/37%.
    let (multi_pubs, multi_vh) = share_with_at_least(&hist, 2);
    result.checks.push(Check::in_range("fig9a: >85% of publishers multi-platform", multi_pubs, 78.0, 100.25));
    result.checks.push(Check::in_range("fig9a: multi-platform publishers carry >95% of VH", multi_vh, 90.0, 100.25));
    let (all5_pubs, all5_vh) = crate::figures::helpers::histogram_entry(&hist, 5).unwrap_or((0.0, 0.0));
    result.checks.push(Check::in_range("fig9a: ≈30% support all 5 platforms", all5_pubs, 18.0, 45.0));
    result.checks.push(Check::in_range("fig9a: all-5 publishers carry >60% of VH", all5_vh, 50.0, 95.0));
    if let (Some((avg_start, avg_end)), Some((w_start, w_end))) =
        (endpoints(&series, "average"), endpoints(&series, "weighted average"))
    {
        result.checks.push(Check::in_range("fig9c: plain average >3 at end", avg_end, 2.7, 4.2));
        result.checks.push(Check::in_range("fig9c: weighted average ≈4.5 at end", w_end, 3.8, 5.0));
        let avg_growth = 100.0 * (avg_end / avg_start - 1.0);
        let w_growth = 100.0 * (w_end / w_start - 1.0);
        result.checks.push(Check::in_range("fig9c: plain average grows ≈48%", avg_growth, 20.0, 75.0));
        result.checks.push(Check::in_range("fig9c: weighted average grows ≈37%", w_growth, 12.0, 65.0));
    }

    result.tables.push(hist);
    result.tables.push(buckets);
    result.series.push(series);
    result
}

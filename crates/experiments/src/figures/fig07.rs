//! Fig 7: percentage of publishers supporting each platform, over time.

use crate::context::ReproContext;
use crate::figures::helpers::{endpoints, share_series, ShareKind};
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::PLATFORM;
use vmp_core::platform::Platform;

/// Runs the Fig 7 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig07", "Fig 7: % of publishers supporting each platform");
    let series = share_series(
        &ctx.store,
        "% of publishers supporting each platform",
        &Platform::ALL,
        PLATFORM,
        ShareKind::Publishers,
    );

    // Paper: set-top grows <20% → >50%; smart TV <20% → >60%; browser and
    // mobile near-universal throughout.
    if let Some((settop_start, settop_end)) = endpoints(&series, "SetTop") {
        result.checks.push(Check::in_range("fig7: set-top <25% of publishers at start", settop_start, 5.0, 27.0));
        result.checks.push(Check::in_range("fig7: set-top >50% of publishers at end", settop_end, 44.0, 70.0));
    }
    if let Some((tv_start, tv_end)) = endpoints(&series, "SmartTV") {
        result.checks.push(Check::in_range("fig7: smart TV <25% at start", tv_start, 5.0, 27.0));
        result.checks.push(Check::in_range("fig7: smart TV >60% at end", tv_end, 50.0, 78.0));
    }
    if let Some((_, browser_end)) = endpoints(&series, "Browser") {
        result.checks.push(Check::in_range("fig7: browser near-universal", browser_end, 90.0, 100.0));
    }
    if let Some((mobile_start, mobile_end)) = endpoints(&series, "Mobile") {
        result.checks.push(Check::new(
            "fig7: mobile app support grows toward universal",
            mobile_end >= mobile_start && mobile_end > 85.0,
            format!("{mobile_start:.1}% → {mobile_end:.1}%"),
        ));
    }

    result.series.push(series);
    result
}

//! Fig 8: CDF of individual view duration per platform (last snapshot).

use crate::context::ReproContext;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Table;
use vmp_core::platform::Platform;
use vmp_stats::Cdf;

/// Runs the Fig 8 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig08", "Fig 8: view duration CDF per platform");
    let last = ctx.store.latest_snapshot().expect("store has data");

    let mut table = Table::new(
        "View duration quantiles (hours) and P(>0.2h), per platform",
        vec!["platform", "p25", "p50", "p75", "P(>0.2h) %"],
    );

    let seg = ctx.store.segment(last);
    let mut p_over: Vec<(Platform, f64)> = Vec::new();
    for platform in Platform::ALL {
        // View-weighted durations (each sample counts `weight` views),
        // straight off the platform/hours/weight columns.
        let mut durations = Vec::new();
        let mut weights = Vec::new();
        if let Some(seg) = &seg {
            let code = platform.code();
            for (i, &p) in seg.platforms().iter().enumerate() {
                if p == code {
                    durations.push(seg.hours()[i]);
                    weights.push(seg.weights()[i]);
                }
            }
        }
        let Some(cdf) = Cdf::weighted(&durations, &weights) else {
            continue;
        };
        let over = 100.0 * (1.0 - cdf.at(0.2));
        p_over.push((platform, over));
        table.row(vec![
            platform.label().to_string(),
            format!("{:.3}", cdf.quantile(0.25)),
            format!("{:.3}", cdf.quantile(0.50)),
            format!("{:.3}", cdf.quantile(0.75)),
            format!("{over:.1}"),
        ]);
    }

    // Paper: >60% of set-top views exceed 0.2 h; only ≈24% of mobile and
    // browser views do.
    let get = |p: Platform| p_over.iter().find(|(pl, _)| *pl == p).map(|(_, v)| *v);
    if let Some(settop) = get(Platform::SetTopBox) {
        result.checks.push(Check::in_range("fig8: set-top P(>0.2h) >60%", settop, 55.0, 90.0));
    }
    if let Some(mobile) = get(Platform::MobileApp) {
        result.checks.push(Check::in_range("fig8: mobile P(>0.2h) ≈24%", mobile, 12.0, 34.0));
    }
    if let Some(browser) = get(Platform::Browser) {
        result.checks.push(Check::in_range("fig8: browser P(>0.2h) ≈24%", browser, 12.0, 36.0));
    }
    if let (Some(settop), Some(mobile)) = (get(Platform::SetTopBox), get(Platform::MobileApp)) {
        result.checks.push(Check::new(
            "fig8: set-top views are much longer than mobile views",
            settop > mobile + 20.0,
            format!("set-top {settop:.1}% vs mobile {mobile:.1}%"),
        ));
    }

    result.tables.push(table);
    result
}

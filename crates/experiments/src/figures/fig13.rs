//! Fig 13: management-complexity measures vs publisher view-hours
//! (log-log scatter + OLS fit).

use crate::context::ReproContext;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::complexity::{complexity_fit, complexity_points, ComplexityMeasure};
use vmp_analytics::report::Table;
use vmp_core::time::SnapshotId;

/// Runs the Fig 13 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig13", "Fig 13: complexity measures vs publisher view-hours");
    let last = ctx.store.latest_snapshot().expect("store has data");

    let mut table = Table::new(
        "Log-log OLS fits (growth per 10x view-hours)",
        vec!["measure", "growth/decade (measured)", "growth/decade (paper)", "r^2", "p-value", "max"],
    );

    for measure in [
        ComplexityMeasure::Combinations,
        ComplexityMeasure::ProtocolTitles,
        ComplexityMeasure::UniqueSdks,
    ] {
        let points = complexity_points(&ctx.store, last, measure, &|publisher| {
            // Catalogue size comes from the publisher's management plane
            // (the paper uses distinct video-ID counts where available).
            ctx.dataset
                .profile(publisher)
                .map(|p| p.plane(SnapshotId::LAST).titles)
                .unwrap_or(1)
        });
        let fit = match complexity_fit(&points) {
            Ok(f) => f,
            Err(e) => {
                result.checks.push(Check::new(
                    format!("{measure:?} fit exists"),
                    false,
                    e,
                ));
                continue;
            }
        };
        let growth = fit.growth_per_decade();
        let paper = measure.paper_growth_per_decade();
        let max = points.iter().map(|p| p.complexity).fold(0.0, f64::max);
        table.row(vec![
            format!("{measure:?}"),
            format!("{growth:.2}x"),
            format!("{paper:.2}x"),
            format!("{:.3}", fit.r_squared),
            format!("{:.1e}", fit.p_value),
            format!("{max:.0}"),
        ]);

        // Sub-linear growth with strong significance is the core claim.
        result.checks.push(Check::new(
            format!("{measure:?}: sub-linear (growth/decade < 10x)"),
            growth > 1.0 && growth < 10.0,
            format!("{growth:.2}x per decade"),
        ));
        result.checks.push(Check::new(
            format!("{measure:?}: fit significant (p < 0.05, paper < 1e-9)"),
            fit.p_value < 0.05,
            format!("p = {:.2e}", fit.p_value),
        ));
        let (lo, hi) = match measure {
            ComplexityMeasure::Combinations => (1.25, 2.6),
            ComplexityMeasure::ProtocolTitles => (2.6, 5.5),
            ComplexityMeasure::UniqueSdks => (1.25, 2.6),
        };
        result.checks.push(Check::in_range(
            format!("{measure:?}: growth/decade near paper's {paper:.2}x"),
            growth,
            lo,
            hi,
        ));
        if measure == ComplexityMeasure::UniqueSdks {
            result.checks.push(Check::in_range(
                "fig13c: largest publisher maintains ≈85 code bases",
                max,
                35.0,
                130.0,
            ));
        }
    }

    result.tables.push(table);
    result.notes.push(
        "Combinations and unique SDKs are measured from observed telemetry (an under-estimate, \
         like the paper's); protocol-titles uses the management plane's catalogue size."
            .into(),
    );
    result
}

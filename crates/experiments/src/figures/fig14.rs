//! Fig 14: prevalence of content syndication.

use crate::context::ReproContext;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Table;
use vmp_syndication::prevalence::syndication_reach;

/// Runs the Fig 14 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig14", "Fig 14: syndication prevalence");
    let reach = syndication_reach(&ctx.store);

    let mut table = Table::new(
        "CDF across owners of % of full syndicators used",
        vec!["quantile", "% of syndicators"],
    );
    if let Some(cdf) = reach.cdf() {
        for q in [0.1, 0.25, 0.5, 0.75, 0.8, 0.9, 1.0] {
            table.row(vec![format!("p{}", (q * 100.0) as u32), format!("{:.1}", cdf.quantile(q))]);
        }
        // Paper: >80% of owners use ≥1 syndicator; 20% of owners reach
        // ≈1/3 of all full syndicators.
        let with_any = 100.0 * reach.owners_with_any();
        result.checks.push(Check::in_range("fig14: >80% of owners use ≥1 syndicator", with_any, 72.0, 100.0));
        let p80 = cdf.quantile(0.80);
        result.checks.push(Check::in_range(
            "fig14: top 20% of owners reach ≈1/3 of syndicators",
            p80,
            18.0,
            45.0,
        ));
    } else {
        result.checks.push(Check::new("fig14: reach CDF exists", false, "no owners observed"));
    }
    result.notes.push(format!(
        "{} full syndicators observed; reach measured from per-(publisher, video) ownership \
         flags in telemetry, as in §6.",
        reach.total_syndicators
    ));
    result.tables.push(table);
    result
}

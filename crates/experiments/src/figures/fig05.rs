//! Fig 5: the target-platform taxonomy (structural figure).

use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Table;
use vmp_core::device::DeviceModel;
use vmp_core::platform::Platform;
use vmp_core::sdk::SdkKind;

/// Runs the Fig 5 regeneration (prints the taxonomy the domain model
/// encodes, with the SDK used per device).
pub fn run() -> ExperimentResult {
    let mut result = ExperimentResult::new("fig05", "Fig 5: target platforms for video publishers");
    let mut table = Table::new(
        "Platform taxonomy",
        vec!["platform", "kind", "devices (SDK)"],
    );
    for platform in Platform::ALL {
        let devices: Vec<String> = DeviceModel::ALL
            .iter()
            .filter(|d| d.platform() == platform)
            .map(|d| format!("{} ({})", d.model_string(), SdkKind::for_device(*d)))
            .collect();
        table.row(vec![
            platform.label().to_string(),
            if platform.is_app_based() { "app".into() } else { "browser".into() },
            devices.join(", "),
        ]);
        result.checks.push(Check::new(
            format!("{platform} has devices"),
            !devices.is_empty(),
            format!("{} devices", devices.len()),
        ));
    }
    result.checks.push(Check::new(
        "five platform categories",
        Platform::ALL.len() == 5,
        "browser, mobile app, set-top, smart TV, console",
    ));
    result.tables.push(table);
    result
}

#[cfg(test)]
mod tests {
    #[test]
    fn taxonomy_is_complete() {
        let r = super::run();
        assert!(r.all_passed());
        assert_eq!(r.tables[0].rows.len(), 5);
    }
}

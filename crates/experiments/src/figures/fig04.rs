//! Fig 4: CDF across publishers of the share of their view-hours served via
//! DASH and via HLS (supporters only, last snapshot).

use crate::context::ReproContext;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::{value_share, PROTOCOL};
use vmp_analytics::report::Table;
use vmp_core::protocol::StreamingProtocol;
use vmp_stats::Cdf;

/// Runs the Fig 4 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig04", "Fig 4: per-publisher view-hour share via DASH / HLS");
    let last = ctx.store.latest_snapshot().expect("store has data");

    let mut table = Table::new(
        "CDF of % view-hours via protocol (supporting publishers only)",
        vec!["quantile", "DASH", "HLS"],
    );
    let dash = value_share(&ctx.store, last, PROTOCOL, &StreamingProtocol::Dash);
    let hls = value_share(&ctx.store, last, PROTOCOL, &StreamingProtocol::Hls);
    let dash_cdf = Cdf::new(&dash);
    let hls_cdf = Cdf::new(&hls);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        table.row(vec![
            format!("p{}", (q * 100.0) as u32),
            dash_cdf.as_ref().map(|c| format!("{:.1}", c.quantile(q))).unwrap_or_default(),
            hls_cdf.as_ref().map(|c| format!("{:.1}", c.quantile(q))).unwrap_or_default(),
        ]);
    }

    // Paper: half of DASH supporters use it for ≤20% of their view-hours;
    // half of HLS supporters use it for ≥85%.
    if let Some(c) = &dash_cdf {
        let median = c.quantile(0.5);
        result.checks.push(Check::in_range(
            "fig4: median DASH share among supporters ≤20%",
            median,
            0.0,
            28.0,
        ));
    }
    if let Some(c) = &hls_cdf {
        let median = c.quantile(0.5);
        result.checks.push(Check::in_range(
            "fig4: median HLS share among supporters ≥85%",
            median,
            70.0,
            100.0,
        ));
    }
    result.checks.push(Check::new(
        "fig4: both protocols have supporters",
        !dash.is_empty() && !hls.is_empty(),
        format!("{} DASH / {} HLS supporters", dash.len(), hls.len()),
    ));

    result.tables.push(table);
    result.notes.push(
        "Large DASH-first publishers push the DASH curve's upper tail; most supporters keep \
         DASH a minority of their traffic (the paper's 'ecosystem maturity' point)."
            .into(),
    );
    result
}

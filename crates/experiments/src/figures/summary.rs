//! §4.4: the paper's summary aggregates, re-measured in one place.

use crate::context::ReproContext;
use crate::figures::helpers::SUPPORT_FLOOR;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::{vh_share, DimSpec, CDN, PLATFORM, PROTOCOL};
use vmp_analytics::perpub::{count_histogram, counts_per_publisher};
use vmp_analytics::report::Table;
use vmp_core::protocol::StreamingProtocol;

/// Runs the §4.4 summary.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("summary", "§4.4 summary aggregates");
    let last = ctx.store.latest_snapshot().expect("store has data");

    let mut table = Table::new("Headline aggregates (last snapshot)", vec!["statistic", "value"]);

    // "No single alternative dominates": HLS and DASH roughly even by VH.
    let vh = vh_share(&ctx.store, last, PROTOCOL);
    let hls = vh.get(&StreamingProtocol::Hls).copied().unwrap_or(0.0);
    let dash = vh.get(&StreamingProtocol::Dash).copied().unwrap_or(0.0);
    table.row(vec!["HLS % of VH".into(), format!("{hls:.1}")]);
    table.row(vec!["DASH % of VH".into(), format!("{dash:.1}")]);
    result.checks.push(Check::new(
        "§4.4: HLS and DASH view-hours roughly even",
        (hls - dash).abs() < 20.0 && hls > 25.0 && dash > 25.0,
        format!("HLS {hls:.1}% vs DASH {dash:.1}%"),
    ));

    // ">90% of VH from publishers with >1 protocol / CDN / platform".
    for (name, vh_multi) in [
        ("protocols", multi_vh(ctx, last, PROTOCOL)),
        ("CDNs", multi_vh(ctx, last, CDN)),
        ("platforms", multi_vh(ctx, last, PLATFORM)),
    ] {
        table.row(vec![format!("% of VH from multi-{name} publishers"), format!("{vh_multi:.1}")]);
        result.checks.push(Check::in_range(
            format!("§4.4: >90% of VH from multi-{name} publishers"),
            vh_multi,
            85.0,
            100.25,
        ));
    }

    // Weighted average counts: protocols 2.2, CDNs 4.5, platforms 4.5.
    for (name, expected, lo, hi, w) in [
        ("protocols", 2.2, 1.9, 2.8, weighted_avg(ctx, last, PROTOCOL)),
        ("CDNs", 4.5, 3.7, 5.0, weighted_avg(ctx, last, CDN)),
        ("platforms", 4.5, 3.8, 5.0, weighted_avg(ctx, last, PLATFORM)),
    ] {
        table.row(vec![format!("weighted avg # {name}"), format!("{w:.2} (paper {expected})")]);
        result.checks.push(Check::in_range(
            format!("§4.4: weighted average {name} ≈{expected}"),
            w,
            lo,
            hi,
        ));
    }

    result.tables.push(table);
    result
}

fn multi_vh<V: Ord>(ctx: &ReproContext, last: vmp_core::time::SnapshotId, spec: DimSpec<V>) -> f64 {
    let counts = counts_per_publisher(&ctx.store, last, spec, SUPPORT_FLOOR);
    let hist = count_histogram(&counts);
    hist.iter().filter(|(c, _)| **c >= 2).map(|(_, (_, vh))| vh).sum()
}

fn weighted_avg<V: Ord>(
    ctx: &ReproContext,
    last: vmp_core::time::SnapshotId,
    spec: DimSpec<V>,
) -> f64 {
    let counts = counts_per_publisher(&ctx.store, last, spec, SUPPORT_FLOOR);
    let total: f64 = counts.iter().map(|c| c.view_hours).sum();
    if total <= 0.0 {
        return 0.0;
    }
    counts.iter().map(|c| c.count as f64 * c.view_hours).sum::<f64>() / total
}

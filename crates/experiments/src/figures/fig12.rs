//! Fig 12: number of CDNs used per publisher, plus §4.3's live/VoD
//! segregation statistics.

use crate::context::ReproContext;
use crate::figures::helpers::{counts_figure, endpoints, share_with_at_least};
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::CDN;
use vmp_analytics::report::Table;
use vmp_core::content::ContentClass;
use vmp_core::time::SnapshotId;

/// Runs the Fig 12 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig12", "Fig 12: CDNs per publisher");
    let (hist, buckets, series) = counts_figure(&ctx.store, "CDNs", CDN);

    // Paper: >40% of publishers single-CDN but <5% of VH; <10% of
    // publishers use 5 CDNs but carry >50% of VH; ≈80% of VH from 4-5-CDN
    // publishers; plain average just above 2, weighted ≈4.5.
    let (one_pubs, one_vh) = crate::figures::helpers::histogram_entry(&hist, 1).unwrap_or((0.0, 0.0));
    result.checks.push(Check::in_range("fig12a: ≈40% of publishers use one CDN", one_pubs, 28.0, 55.0));
    result.checks.push(Check::in_range("fig12a: single-CDN publishers carry <5% of VH", one_vh, 0.0, 8.0));
    let (five_pubs, five_vh) = crate::figures::helpers::histogram_entry(&hist, 5).unwrap_or((0.0, 0.0));
    result.checks.push(Check::in_range("fig12a: <10-ish% of publishers use 5 CDNs", five_pubs, 2.0, 18.0));
    result.checks.push(Check::in_range("fig12a: 5-CDN publishers carry >50% of VH", five_vh, 35.0, 90.0));
    let (_, vh_4plus) = share_with_at_least(&hist, 4);
    result.checks.push(Check::in_range("§4.4: ≈80% of VH from 4-5-CDN publishers", vh_4plus, 65.0, 95.0));
    if let (Some((_, avg_end)), Some((_, w_end))) =
        (endpoints(&series, "average"), endpoints(&series, "weighted average"))
    {
        result.checks.push(Check::in_range("fig12c: plain average slightly above 2", avg_end, 1.7, 2.8));
        result.checks.push(Check::in_range("fig12c: weighted average ≈4.5", w_end, 3.7, 5.0));
    }

    // Segregation: among multi-CDN publishers serving both classes, how
    // many keep a CDN exclusively for VoD (paper: 30%) or live (19%)?
    let seg = segregation_stats(ctx, ctx.store.latest_snapshot().expect("data"));
    let mut seg_table = Table::new(
        "§4.3: live/VoD CDN segregation among multi-CDN live+VoD publishers",
        vec!["statistic", "% of publishers"],
    );
    seg_table.row(vec!["≥1 VoD-only CDN".into(), format!("{:.1}", seg.0)]);
    seg_table.row(vec!["≥1 live-only CDN".into(), format!("{:.1}", seg.1)]);
    result.checks.push(Check::in_range("§4.3: ≈30% have a VoD-only CDN", seg.0, 18.0, 42.0));
    result.checks.push(Check::in_range("§4.3: ≈19% have a live-only CDN", seg.1, 8.0, 30.0));

    result.tables.push(hist);
    result.tables.push(buckets);
    result.tables.push(seg_table);
    result.series.push(series);
    result
}

/// (% with a VoD-only CDN, % with a live-only CDN) among multi-CDN
/// publishers serving both content classes, measured from telemetry.
fn segregation_stats(ctx: &ReproContext, snapshot: SnapshotId) -> (f64, f64) {
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct PubCdns {
        /// cdn bit (dense CDN index) → (vod views, live views).
        per_cdn: BTreeMap<u8, (u32, u32)>,
        vod_total: u32,
        live_total: u32,
    }
    let Some(seg) = ctx.store.segment(snapshot) else {
        return (0.0, 0.0);
    };
    let vod = ContentClass::Vod.code();
    let mut per_pub: BTreeMap<u32, PubCdns> = BTreeMap::new();
    for i in 0..seg.len() {
        let entry = per_pub.entry(seg.publishers()[i]).or_default();
        let is_vod = seg.classes()[i] == vod;
        if is_vod {
            entry.vod_total += 1;
        } else {
            entry.live_total += 1;
        }
        let mut bits = seg.cdn_masks()[i];
        while bits != 0 {
            let counts = entry.per_cdn.entry(bits.trailing_zeros() as u8).or_default();
            bits &= bits - 1;
            if is_vod {
                counts.0 += 1;
            } else {
                counts.1 += 1;
            }
        }
    }
    let mut eligible = 0usize;
    let mut vod_only = 0usize;
    let mut live_only = 0usize;
    for (_, p) in per_pub {
        if p.per_cdn.len() < 2 || p.vod_total < 10 || p.live_total < 10 {
            // Must be multi-CDN and *meaningfully* serve both classes —
            // with too few observed views of a class, exclusivity is
            // undecidable either way.
            continue;
        }
        eligible += 1;
        // A CDN is exclusively-VoD when it served VoD but zero live views
        // *and* enough live views exist that, were the CDN class-agnostic,
        // we would have expected to see several there (binomial evidence —
        // the paper's dataset has billions of views so absence is
        // conclusive; a sampled dataset needs the explicit test).
        let mut has_vod_only = false;
        let mut has_live_only = false;
        for (vod, live) in p.per_cdn.values() {
            let cdn_share_of_vod = *vod as f64 / p.vod_total.max(1) as f64;
            let cdn_share_of_live = *live as f64 / p.live_total.max(1) as f64;
            let expected_live = p.live_total as f64 * cdn_share_of_vod;
            let expected_vod = p.vod_total as f64 * cdn_share_of_live;
            if *live == 0 && *vod >= 3 && expected_live >= 3.5 {
                has_vod_only = true;
            }
            if *vod == 0 && *live >= 3 && expected_vod >= 3.5 {
                has_live_only = true;
            }
        }
        if has_vod_only {
            vod_only += 1;
        }
        if has_live_only {
            live_only += 1;
        }
    }
    if eligible == 0 {
        (0.0, 0.0)
    } else {
        (
            100.0 * vod_only as f64 / eligible as f64,
            100.0 * live_only as f64 / eligible as f64,
        )
    }
}

//! Fig 10: view-hour shares of specific devices within one platform.

use crate::context::ReproContext;
use crate::figures::helpers::endpoints;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Series;
use vmp_analytics::store::{ViewRef, ViewStore};
use vmp_core::device::DeviceModel;
use vmp_core::platform::{BrowserTech, Platform};

/// Share series within one platform (views of other platforms excluded).
fn within_platform_series(
    store: &ViewStore,
    title: &str,
    platform: Platform,
    label_of: impl Fn(&ViewRef<'_>) -> Option<String>,
) -> Series {
    let mut series = Series::new(title, "snapshot");
    let snapshots = store.snapshots();
    // Collect labels first for stable line order.
    let mut labels: Vec<String> = Vec::new();
    for v in store.all() {
        if v.view.record.device.platform() == platform {
            if let Some(l) = label_of(&v) {
                if !labels.contains(&l) {
                    labels.push(l);
                }
            }
        }
    }
    labels.sort();
    for label in &labels {
        let mut points = Vec::new();
        for snapshot in &snapshots {
            let mut total = 0.0;
            let mut with = 0.0;
            for v in store.at(*snapshot) {
                if v.view.record.device.platform() != platform {
                    continue;
                }
                let h = v.hours();
                total += h;
                if label_of(&v).as_deref() == Some(label) {
                    with += h;
                }
            }
            let share = if total > 0.0 { 100.0 * with / total } else { 0.0 };
            points.push((snapshot.to_string(), share));
        }
        series.line(label.clone(), points);
    }
    series
}

/// Runs the Fig 10 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig10", "Fig 10: device shares within platforms");

    let browsers = within_platform_series(
        &ctx.store,
        "Fig 10(a): browser view-hours by player technology",
        Platform::Browser,
        |v| v.view.record.device.browser_tech().map(|t| t.label().to_string()),
    );
    let mobile = within_platform_series(
        &ctx.store,
        "Fig 10(b): mobile view-hours by OS",
        Platform::MobileApp,
        |v| Some(v.view.record.os.to_string()),
    );
    let settop = within_platform_series(
        &ctx.store,
        "Fig 10(c): set-top view-hours by device",
        Platform::SetTopBox,
        |v| Some(v.view.record.device.model_string().to_string()),
    );

    // Paper: HTML5 ≈25% → ≈60%; Flash ≈60% → ≈40%; Android rises to parity
    // with iOS; Roku dominant among set-tops with AppleTV/FireTV visible.
    if let Some((h5_start, h5_end)) = endpoints(&browsers, BrowserTech::Html5.label()) {
        result.checks.push(Check::in_range("fig10a: HTML5 ≈25% at start", h5_start, 15.0, 35.0));
        result.checks.push(Check::in_range("fig10a: HTML5 ≈60% at end", h5_end, 48.0, 70.0));
    }
    if let Some((flash_start, flash_end)) = endpoints(&browsers, BrowserTech::Flash.label()) {
        result.checks.push(Check::in_range("fig10a: Flash ≈60% at start", flash_start, 48.0, 70.0));
        result.checks.push(Check::in_range("fig10a: Flash ≈40% at end (modest drop)", flash_end, 28.0, 50.0));
    }
    if let (Some((android_start, android_end)), Some((_, ios_end))) =
        (endpoints(&mobile, "Android"), endpoints(&mobile, "iOS"))
    {
        result.checks.push(Check::new(
            "fig10b: Android view-hours rise significantly",
            android_end > android_start + 5.0,
            format!("{android_start:.1}% → {android_end:.1}%"),
        ));
        result.checks.push(Check::new(
            "fig10b: Android and iOS comparable at the end",
            (android_end - ios_end).abs() < 18.0,
            format!("Android {android_end:.1}% vs iOS {ios_end:.1}%"),
        ));
    }
    if let Some((_, roku_end)) = endpoints(&settop, DeviceModel::Roku.model_string()) {
        let others_end = [DeviceModel::AppleTv, DeviceModel::FireTv, DeviceModel::Chromecast]
            .iter()
            .filter_map(|d| endpoints(&settop, d.model_string()).map(|e| e.1))
            .fold(0.0, f64::max);
        result.checks.push(Check::new(
            "fig10c: Roku dominant among set-tops",
            roku_end > others_end,
            format!("Roku {roku_end:.1}% vs next {others_end:.1}%"),
        ));
        let appletv_end =
            endpoints(&settop, DeviceModel::AppleTv.model_string()).map(|e| e.1).unwrap_or(0.0);
        result.checks.push(Check::in_range(
            "fig10c: AppleTV non-negligible",
            appletv_end,
            8.0,
            40.0,
        ));
    }

    result.series.push(browsers);
    result.series.push(mobile);
    result.series.push(settop);
    result
}

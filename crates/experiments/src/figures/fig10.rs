//! Fig 10: view-hour shares of specific devices within one platform.

use crate::context::ReproContext;
use crate::figures::helpers::endpoints;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Series;
use vmp_analytics::store::ViewStore;
use vmp_core::device::DeviceModel;
use vmp_core::platform::{BrowserTech, Platform};

/// Share series within one platform (views of other platforms excluded).
///
/// Labels are a function of the device model (telemetry sets `os` from the
/// device), so the whole figure is a device-code column scan: one pass per
/// segment accumulating each label's hours and the platform total in row
/// order — the same ordered additions the per-label rescans performed.
fn within_platform_series(
    store: &ViewStore,
    title: &str,
    platform: Platform,
    label_of: impl Fn(DeviceModel) -> Option<String>,
) -> Series {
    let mut series = Series::new(title, "snapshot");
    let mut in_platform = [false; DeviceModel::CODE_COUNT];
    let mut label_lut: [Option<String>; DeviceModel::CODE_COUNT] =
        std::array::from_fn(|_| None);
    for code in 0..DeviceModel::CODE_COUNT as u8 {
        if let Some(device) = DeviceModel::from_code(code) {
            if device.platform() == platform {
                in_platform[code as usize] = true;
                label_lut[code as usize] = label_of(device);
            }
        }
    }
    // Observed labels only, first-occurrence order then sorted — the same
    // line set and order the row scan produced.
    let mut labels: Vec<String> = Vec::new();
    for seg in store.iter_segments() {
        for &code in seg.devices() {
            if let Some(l) = &label_lut[code as usize] {
                if !labels.contains(l) {
                    labels.push(l.clone());
                }
            }
        }
    }
    labels.sort();
    let group_of: [Option<usize>; DeviceModel::CODE_COUNT] = std::array::from_fn(|code| {
        label_lut[code].as_ref().and_then(|l| labels.iter().position(|x| x == l))
    });

    let mut lines: Vec<Vec<(String, f64)>> = vec![Vec::new(); labels.len()];
    for seg in store.iter_segments() {
        let mut total = 0.0f64;
        let mut with = vec![0.0f64; labels.len()];
        for (i, &code) in seg.devices().iter().enumerate() {
            let code = code as usize;
            if !in_platform[code] {
                continue;
            }
            let h = seg.weighted_hours(i);
            total += h;
            if let Some(g) = group_of[code] {
                with[g] += h;
            }
        }
        for (g, w) in with.into_iter().enumerate() {
            let share = if total > 0.0 { 100.0 * w / total } else { 0.0 };
            lines[g].push((seg.snapshot().to_string(), share));
        }
    }
    for (label, points) in labels.into_iter().zip(lines) {
        series.line(label, points);
    }
    series
}

/// Runs the Fig 10 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig10", "Fig 10: device shares within platforms");

    let browsers = within_platform_series(
        &ctx.store,
        "Fig 10(a): browser view-hours by player technology",
        Platform::Browser,
        |d| d.browser_tech().map(|t| t.label().to_string()),
    );
    let mobile = within_platform_series(
        &ctx.store,
        "Fig 10(b): mobile view-hours by OS",
        Platform::MobileApp,
        |d| Some(d.os().to_string()),
    );
    let settop = within_platform_series(
        &ctx.store,
        "Fig 10(c): set-top view-hours by device",
        Platform::SetTopBox,
        |d| Some(d.model_string().to_string()),
    );

    // Paper: HTML5 ≈25% → ≈60%; Flash ≈60% → ≈40%; Android rises to parity
    // with iOS; Roku dominant among set-tops with AppleTV/FireTV visible.
    if let Some((h5_start, h5_end)) = endpoints(&browsers, BrowserTech::Html5.label()) {
        result.checks.push(Check::in_range("fig10a: HTML5 ≈25% at start", h5_start, 15.0, 35.0));
        result.checks.push(Check::in_range("fig10a: HTML5 ≈60% at end", h5_end, 48.0, 70.0));
    }
    if let Some((flash_start, flash_end)) = endpoints(&browsers, BrowserTech::Flash.label()) {
        result.checks.push(Check::in_range("fig10a: Flash ≈60% at start", flash_start, 48.0, 70.0));
        result.checks.push(Check::in_range("fig10a: Flash ≈40% at end (modest drop)", flash_end, 28.0, 50.0));
    }
    if let (Some((android_start, android_end)), Some((_, ios_end))) =
        (endpoints(&mobile, "Android"), endpoints(&mobile, "iOS"))
    {
        result.checks.push(Check::new(
            "fig10b: Android view-hours rise significantly",
            android_end > android_start + 5.0,
            format!("{android_start:.1}% → {android_end:.1}%"),
        ));
        result.checks.push(Check::new(
            "fig10b: Android and iOS comparable at the end",
            (android_end - ios_end).abs() < 18.0,
            format!("Android {android_end:.1}% vs iOS {ios_end:.1}%"),
        ));
    }
    if let Some((_, roku_end)) = endpoints(&settop, DeviceModel::Roku.model_string()) {
        let others_end = [DeviceModel::AppleTv, DeviceModel::FireTv, DeviceModel::Chromecast]
            .iter()
            .filter_map(|d| endpoints(&settop, d.model_string()).map(|e| e.1))
            .fold(0.0, f64::max);
        result.checks.push(Check::new(
            "fig10c: Roku dominant among set-tops",
            roku_end > others_end,
            format!("Roku {roku_end:.1}% vs next {others_end:.1}%"),
        ));
        let appletv_end =
            endpoints(&settop, DeviceModel::AppleTv.model_string()).map(|e| e.1).unwrap_or(0.0);
        result.checks.push(Check::in_range(
            "fig10c: AppleTV non-negligible",
            appletv_end,
            8.0,
            40.0,
        ));
    }

    result.series.push(browsers);
    result.series.push(mobile);
    result.series.push(settop);
    result
}

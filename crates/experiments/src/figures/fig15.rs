//! Fig 15: average-bitrate distributions for owner vs syndicator clients
//! (California iPads over WiFi, two ISP×CDN panels).

use crate::context::ReproContext;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Table;
use vmp_core::cdn::CdnName;
use vmp_core::geo::Isp;
use vmp_syndication::catalogue::ladder_of;
use vmp_syndication::qoe::{qoe_comparison, QoeComparison, QoeScenario};

/// Simulated views per side per panel.
const SESSIONS: usize = 150;

/// The two panels of Figs 15/16 (shared with fig16).
pub fn panels() -> Vec<(&'static str, QoeComparison)> {
    let owner = ladder_of("O").expect("static");
    let s7 = ladder_of("S7").expect("static");
    vec![
        (
            "ISP X, CDN A",
            qoe_comparison(&owner, &s7, QoeScenario::new(Isp::X, CdnName::A, SESSIONS), 1715),
        ),
        (
            "ISP Y, CDN B",
            qoe_comparison(&owner, &s7, QoeScenario::new(Isp::Y, CdnName::B, SESSIONS), 1716),
        ),
    ]
}

/// Runs the Fig 15 regeneration.
pub fn run(_ctx: &ReproContext) -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig15", "Fig 15: average bitrate, owner vs syndicator (S7)");
    for (label, cmp) in panels() {
        let mut table = Table::new(
            format!("Average bitrate CDF on {label} (kbps)"),
            vec!["quantile", "owner O", "syndicator S7"],
        );
        let o = cmp.owner.bitrate_cdf().expect("sessions ran");
        let s = cmp.syndicator.bitrate_cdf().expect("sessions ran");
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            table.row(vec![
                format!("p{}", (q * 100.0) as u32),
                format!("{:.0}", o.quantile(q)),
                format!("{:.0}", s.quantile(q)),
            ]);
        }
        let ratio = cmp.median_bitrate_ratio();
        result.checks.push(Check::in_range(
            format!("fig15 ({label}): owner's median bitrate ≈2.5x the syndicator's"),
            ratio,
            1.7,
            3.6,
        ));
        result.tables.push(table);
    }
    result.notes.push(
        "Same content, same clients, same ISP×CDN; the sides differ in ladder (Fig 17) and \
         the modeled operational gap (see DESIGN.md substitutions)."
            .into(),
    );
    result
}

//! Fig 16: rebuffering-ratio distributions for owner vs syndicator clients.

use crate::context::ReproContext;
use crate::figures::fig15::panels;
use crate::result::{Check, ExperimentResult};
use vmp_analytics::report::Table;

/// Runs the Fig 16 regeneration.
pub fn run(_ctx: &ReproContext) -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig16", "Fig 16: rebuffering ratio, owner vs syndicator (S7)");
    for (label, cmp) in panels() {
        let mut table = Table::new(
            format!("Rebuffering-ratio CDF on {label}"),
            vec!["quantile", "owner O", "syndicator S7"],
        );
        let o = cmp.owner.rebuffer_cdf().expect("sessions ran");
        let s = cmp.syndicator.rebuffer_cdf().expect("sessions ran");
        for q in [0.5, 0.75, 0.9, 0.95] {
            table.row(vec![
                format!("p{}", (q * 100.0) as u32),
                format!("{:.4}", o.quantile(q)),
                format!("{:.4}", s.quantile(q)),
            ]);
        }
        let reduction = 100.0 * cmp.p90_rebuffer_reduction();
        result.checks.push(Check::in_range(
            format!("fig16 ({label}): owner's p90 rebuffering ≈40% lower"),
            reduction,
            15.0,
            75.0,
        ));
        result.tables.push(table);
    }
    result
}

//! Fig 6: platform shares of view-hours and of views, over time.

use crate::context::ReproContext;
use crate::figures::helpers::{endpoints, share_series, ShareKind};
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::PLATFORM;
use vmp_core::platform::Platform;

/// Runs the Fig 6 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig06", "Fig 6: platform usage over 27 months");

    let a = share_series(
        &ctx.store,
        "Fig 6(a): % of view-hours per platform",
        &Platform::ALL,
        PLATFORM,
        ShareKind::ViewHours,
    );
    let excluded = ctx.dataset.largest_publishers(3);
    let store_wo = ctx.store_excluding(&excluded);
    let b = share_series(
        &store_wo,
        "Fig 6(b): % of view-hours per platform, excluding the 3 largest publishers",
        &Platform::ALL,
        PLATFORM,
        ShareKind::ViewHours,
    );
    let c = share_series(
        &ctx.store,
        "Fig 6(c): % of views per platform",
        &Platform::ALL,
        PLATFORM,
        ShareKind::Views,
    );

    // Paper endpoints: browser VH 60% → <25%; set-top VH grows to ≈40%
    // (largest share); smart TV stays <5%; mobile steady 20-25%; set-top
    // *views* only ≈20% (long-view effect).
    if let Some((browser_start, browser_end)) = endpoints(&a, "Browser") {
        result.checks.push(Check::in_range("fig6a: browser ≈60% of VH at start", browser_start, 48.0, 70.0));
        result.checks.push(Check::in_range("fig6a: browser <25% of VH at end", browser_end, 10.0, 28.0));
    }
    if let Some((settop_start, settop_end)) = endpoints(&a, "SetTop") {
        result.checks.push(Check::in_range("fig6a: set-top <20% of VH at start", settop_start, 5.0, 22.0));
        result.checks.push(Check::in_range("fig6a: set-top ≈40% of VH at end", settop_end, 30.0, 50.0));
    }
    if let Some((_, tv_end)) = endpoints(&a, "SmartTV") {
        result.checks.push(Check::in_range("fig6a: smart TV <5-ish% of VH at end", tv_end, 0.0, 9.0));
    }
    if let Some((_, mobile_end)) = endpoints(&a, "Mobile") {
        result.checks.push(Check::in_range("fig6a: mobile ≈20-25% of VH at end", mobile_end, 14.0, 32.0));
    }
    if let Some((_, settop_views_end)) = endpoints(&c, "SetTop") {
        result.checks.push(Check::in_range("fig6c: set-top ≈20% of views at end", settop_views_end, 13.0, 28.0));
    }
    // Set-top leads all platforms by VH at the end.
    let settop_end = endpoints(&a, "SetTop").map(|e| e.1).unwrap_or(0.0);
    let others_max = ["Browser", "Mobile", "SmartTV", "Console"]
        .iter()
        .filter_map(|l| endpoints(&a, l).map(|e| e.1))
        .fold(0.0, f64::max);
    result.checks.push(Check::new(
        "fig6a: set-top has the largest VH share at the end",
        settop_end > others_max,
        format!("set-top {settop_end:.1}% vs next {others_max:.1}%"),
    ));
    // Fig 6(b): without the giants, mobile overtakes but trends stay
    // qualitatively similar (set-top still grows).
    if let Some((settop_wo_start, settop_wo_end)) = endpoints(&b, "SetTop") {
        result.checks.push(Check::new(
            "fig6b: set-top still grows without the 3 largest",
            settop_wo_end > settop_wo_start,
            format!("{settop_wo_start:.1}% → {settop_wo_end:.1}%"),
        ));
    }

    result.series.push(a);
    result.series.push(b);
    result.series.push(c);
    result
}

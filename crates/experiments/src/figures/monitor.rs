//! `monitor` — the streaming health plane graded against fault ground truth.
//!
//! Every preset fault plan is replayed against a three-CDN population with
//! failover *disabled*, so damage lands on (and stays attributed to) the
//! faulted CDN. Completions stream into a [`HealthMonitor`] the moment they
//! finish — sorted only by fault-clock end time, as a real collector would
//! see them — and the alert stream is scored against the injected plan
//! itself: precision, recall, and time-to-detect, with the ranked culprit
//! list checked against the CDN (or (CDN, region) pair) that actually
//! misbehaved. A fault-free control must stay perfectly silent, and the
//! whole pipeline is seed-deterministic, which a replay fingerprint pins.

use std::collections::BTreeMap;

use crate::result::{Check, ExperimentResult};
use vmp_abr::algorithm::ThroughputRule;
use vmp_abr::network::{NetworkModel, NetworkProfile};
use vmp_analytics::report::Table;
use vmp_cdn::broker::{Broker, BrokerPolicy};
use vmp_cdn::edge::EdgeCluster;
use vmp_cdn::routing::Router;
use vmp_cdn::strategy::{CdnAssignment, CdnScope, CdnStrategy};
use vmp_core::cdn::CdnName;
use vmp_core::geo::ConnectionType;
use vmp_core::ladder::BitrateLadder;
use vmp_core::units::{Bytes, Seconds};
use vmp_faults::{BreakerConfig, FaultInjector, FaultProfile, RetryPolicy};
use vmp_monitor::{score_alerts, Cell, HealthMonitor};
use vmp_session::hooks::{CompletionSink, SessionEnd};
use vmp_session::player::{infrastructure_fn, MultiCdnContext, PlaybackConfig, Player};
use vmp_stats::Rng;

/// Sessions per arm, staggered across the (shifted) fault horizon.
const SESSIONS: usize = 1680;

/// Edge regions per CDN; sessions rotate through them.
const REGIONS: usize = 3;

/// Publishers the population is spread over (materializes publisher cells).
const PUBLISHERS: u64 = 8;

/// Session-trace id namespace for this scenario (keeps ids disjoint from
/// the synth pipeline's and the other scenarios' in a full traced run).
const TRACE_ID_BASE: u64 = 9_000_000_000;

/// Id stride between arms, so replayed arms don't alias the originals.
const ARM_STRIDE: u64 = 100_000;

/// Delay applied to every preset so completions build a clean detector
/// baseline before the first incident lands (sessions are ~4 min long, so
/// the first ten minutes of completions are guaranteed fault-free).
const BASELINE_SHIFT: Seconds = Seconds(600.0);

/// Credit window past a fault's end: sessions that absorbed the fault but
/// only finished (and were only counted) after it cleared, plus the sliding
/// window's retention of their damage.
const SLACK: Seconds = Seconds(600.0);

/// One graded arm.
struct ArmReport {
    label: &'static str,
    alerts: usize,
    precision: f64,
    recall: f64,
    ttd: Option<f64>,
    top_culprit: Option<String>,
    /// Top culprit cell, for localization checks.
    top_cell: Option<Cell>,
    /// FNV-1a over the full alert stream and culprit ranking.
    fingerprint: u64,
}

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn ladder() -> BitrateLadder {
    BitrateLadder::from_bitrates(&[400, 800, 1600, 3200, 6400]).expect("static ladder")
}

fn strategy() -> CdnStrategy {
    CdnStrategy::new(vec![
        CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::All },
        CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
        CdnAssignment { cdn: CdnName::C, weight: 1.0, scope: CdnScope::All },
    ])
    .expect("valid strategy")
}

/// Plays the staggered population under `profile` (already shifted) with
/// failover off, streaming every completion into `sink` in fault-clock
/// order — the order a central collector would ingest them.
fn run_population(
    seed: u64,
    arm: u64,
    profile: Option<&FaultProfile>,
    sink: &mut dyn CompletionSink,
) {
    // Each arm replays the same fault-clock range; a fresh exemplar epoch
    // keeps this arm's alerts from citing a previous arm's look-alikes.
    vmp_session::hooks::trace_epoch();
    let injector = profile.map(|p| FaultInjector::new(p.clone()));
    let horizon = profile.map(|p| p.horizon()).unwrap_or(Seconds(2100.0));
    let strategy = strategy();
    let broker = Broker::with_breaker(BrokerPolicy::Weighted, BreakerConfig::default());
    let routers: BTreeMap<CdnName, Router> = strategy
        .cdns()
        .iter()
        .map(|c| (*c, Router::for_cdn(*c, 8)))
        .collect();
    let mut edges: BTreeMap<CdnName, EdgeCluster> = strategy
        .cdns()
        .iter()
        .map(|c| (*c, EdgeCluster::new(REGIONS, Bytes(2_000_000_000))))
        .collect();
    let abr = ThroughputRule::default();

    let mut ends: Vec<SessionEnd> = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS {
        let mut rng = Rng::seed_from(seed ^ 0x0B5E_44E5).fork(i as u64);
        let network =
            NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Wifi, 1.0));
        let region = i % REGIONS;
        let mut config =
            PlaybackConfig::vod(ladder(), Seconds::from_minutes(4.0), Seconds::from_minutes(1.0));
        config.start_offset = Seconds(horizon.0 * i as f64 / SESSIONS as f64);
        if profile.is_some() {
            config.retry = RetryPolicy::resilient();
        }
        let start_offset = config.start_offset;
        let mut player = Player::new(config, network, &abr).expect("valid config");
        let mut infra = infrastructure_fn(&routers, &mut edges, region, injector.as_ref());
        let mut ctx = MultiCdnContext {
            broker: &broker,
            strategy: &strategy,
            failure_probability: 0.0,
            failover_enabled: false, // damage must stay attributed to the faulted CDN
            health_gate: false,
            faults: injector.as_ref(),
            retry_budget: None,
            infrastructure: &mut infra,
        };
        // Session-trace ids live in a scenario-private namespace so a full
        // `repro --session-trace` run cannot collide them with the synth
        // pipeline's telemetry session ids, and each arm gets its own
        // sub-range so replayed arms don't alias the originals.
        let trace = vmp_session::hooks::trace_begin(
            TRACE_ID_BASE + arm * ARM_STRIDE + i as u64,
            Some(i as u64 % PUBLISHERS),
            None,
            Some(region),
            start_offset,
        );
        let out = player.play_multi_cdn(&mut ctx, &mut rng);
        vmp_session::hooks::trace_finish(trace, &out);
        ends.push(SessionEnd::new(out).in_region(region).for_publisher(i as u64 % PUBLISHERS));
    }

    // Completions reach the collector in end-time order, not start order
    // (sessions that died mid-outage finish early). The index tie-break
    // keeps same-instant ends deterministic; the monitor itself is
    // order-insensitive within a tick.
    let mut order: Vec<usize> = (0..ends.len()).collect();
    order.sort_by(|a, b| {
        ends[*a]
            .end_clock()
            .0
            .partial_cmp(&ends[*b].end_clock().0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    for i in order {
        sink.on_session_end(&ends[i]);
    }
}

/// Runs one faulted arm end to end and grades the alert stream.
fn run_arm(seed: u64, arm: u64, label: &'static str, profile: &FaultProfile) -> ArmReport {
    let mut monitor = HealthMonitor::with_defaults();
    run_population(seed, arm, Some(profile), &mut monitor);
    monitor.finish();

    let score = score_alerts(monitor.alerts(), profile, SLACK);
    let culprits = monitor.culprits();
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    for alert in monitor.alerts() {
        fingerprint = fnv1a(fingerprint, alert.to_string().as_bytes());
    }
    for culprit in &culprits {
        fingerprint = fnv1a(fingerprint, culprit.describe().as_bytes());
    }
    ArmReport {
        label,
        alerts: monitor.alerts().len(),
        precision: score.precision(),
        recall: score.recall(),
        ttd: score.mean_time_to_detect(),
        top_culprit: culprits.first().map(|c| c.describe()),
        top_cell: culprits.first().map(|c| c.cell),
        fingerprint,
    }
}

/// The three preset fault plans the scenario grades, with the CDN each
/// one injures.
pub fn presets() -> [(&'static str, CdnName, FaultProfile); 3] {
    [
        ("cdn_brownout(A)", CdnName::A, FaultProfile::cdn_brownout(CdnName::A)),
        ("regional_outage(B)", CdnName::B, FaultProfile::regional_outage(CdnName::B)),
        ("flaky_origin(C)", CdnName::C, FaultProfile::flaky_origin(CdnName::C)),
    ]
}

/// Plays one preset arm (index into [`presets`]) and returns the alerts it
/// raised. When session tracing is armed the alerts carry exemplar trace
/// ids in the `TRACE_ID_BASE + preset * ARM_STRIDE` namespace; the
/// trace-exemplar integration test drives this directly.
pub fn preset_alerts(seed: u64, preset: usize) -> Vec<vmp_monitor::Alert> {
    let (_, _, profile) = &presets()[preset];
    let mut monitor = HealthMonitor::with_defaults();
    run_population(seed, preset as u64, Some(&profile.shifted(BASELINE_SHIFT)), &mut monitor);
    monitor.finish();
    monitor.alerts().to_vec()
}

/// Start of the session-trace id range [`preset_alerts`] uses for a preset.
pub fn preset_trace_base(preset: usize) -> u64 {
    TRACE_ID_BASE + preset as u64 * ARM_STRIDE
}

/// The region-scoped plan: a hard outage of CDN B confined to region 1,
/// which the culprit ranking must pin to the (B, 1) pair cell.
fn scoped_profile() -> FaultProfile {
    FaultProfile::builder()
        .outage(CdnName::B, Seconds(600.0), Seconds(900.0))
        .in_region(1)
        .build()
        .shifted(BASELINE_SHIFT)
}

/// Runs the scenario for a master seed (`repro --seed N`; the ecosystem
/// default otherwise).
pub fn run(seed: u64) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "monitor",
        "Scenario: streaming health plane graded against fault-injection ground truth",
    );

    let presets = presets();

    let mut arms: Vec<(CdnName, ArmReport)> = Vec::new();
    for (arm, (label, target, profile)) in presets.iter().enumerate() {
        arms.push((
            *target,
            run_arm(seed, arm as u64, label, &profile.shifted(BASELINE_SHIFT)),
        ));
    }
    let scoped = run_arm(seed, 3, "outage(B) in region 1", &scoped_profile());
    let replay =
        run_arm(seed, 4, "cdn_brownout(A) replay", &presets[0].2.shifted(BASELINE_SHIFT));

    // Fault-free control: the identical population with no injector.
    let mut control = HealthMonitor::with_defaults();
    run_population(seed, 5, None, &mut control);
    control.finish();
    let control_alerts = control.alerts().len();

    let mut table = Table::new(
        "Detector scorecard: 1680 staggered sessions per arm, failover off, alerts vs plan",
        vec!["arm", "alerts", "precision", "recall", "time-to-detect", "top culprit"],
    );
    for arm in arms.iter().map(|(_, a)| a).chain([&scoped]) {
        table.row(vec![
            arm.label.to_string(),
            arm.alerts.to_string(),
            format!("{:.3}", arm.precision),
            format!("{:.3}", arm.recall),
            arm.ttd.map(|d| format!("{d:.0}s")).unwrap_or_else(|| "-".to_string()),
            arm.top_culprit.clone().unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.row(vec![
        "no faults (control)".to_string(),
        control_alerts.to_string(),
        "1.000".to_string(),
        "1.000".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    result.tables.push(table);

    for (target, arm) in &arms {
        result.checks.push(Check::new(
            format!("{} raises alerts", arm.label),
            arm.alerts > 0,
            format!("{} alerts", arm.alerts),
        ));
        result.checks.push(Check::new(
            format!("{} precision >= 0.9", arm.label),
            arm.precision >= 0.9,
            format!("precision {:.3} over {} alerts", arm.precision, arm.alerts),
        ));
        result.checks.push(Check::new(
            format!("{} localizes the faulted CDN", arm.label),
            arm.top_cell.map(|c| c.cdn()) == Some(Some(*target)),
            arm.top_culprit.clone().unwrap_or_else(|| "no culprit ranked".to_string()),
        ));
    }
    result.checks.push(Check::new(
        "region-scoped outage localizes to the pair cell",
        scoped.top_cell == Some(Cell::CdnRegion(CdnName::B, 1)),
        scoped.top_culprit.clone().unwrap_or_else(|| "no culprit ranked".to_string()),
    ));
    result.checks.push(Check::new(
        "fault-free control stays silent",
        control_alerts == 0,
        format!("{control_alerts} alerts without faults"),
    ));
    result.checks.push(Check::new(
        "same seed replays the alert stream bit-identically",
        arms[0].1.fingerprint == replay.fingerprint,
        format!("fingerprint {:#018x} vs {:#018x}", arms[0].1.fingerprint, replay.fingerprint),
    ));

    result.notes.push(format!(
        "all plans shifted {}s later so completions build a clean EWMA baseline; \
         failover and health gating are off so symptoms stay attributed to the \
         faulted CDN; scoring slack {}s covers sessions that absorbed a fault but \
         completed after it cleared; master seed {seed:#x}",
        BASELINE_SHIFT.0, SLACK.0
    ));
    result.notes.push(
        "precision counts an alert as true when a scheduled non-instant window \
         overlaps it and their scopes intersect; recall is over scorable windows \
         (instant cache flushes are excluded); localization is graded separately \
         via the ranked culprit list"
            .to_string(),
    );

    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE's acceptance seed: every preset must be detected and
    /// localized at seed 7 specifically.
    #[test]
    fn all_presets_detected_and_localized_at_seed_7() {
        let result = run(7);
        assert!(result.all_passed(), "failed checks: {:?}", result.failures());
    }

    #[test]
    fn monitor_scenario_is_deterministic() {
        let a = run(0x5EED_CAFE);
        assert!(a.all_passed(), "failed checks: {:?}", a.failures());
        let b = run(0x5EED_CAFE);
        assert_eq!(a.tables, b.tables);
    }
}

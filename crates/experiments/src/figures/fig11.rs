//! Fig 11: CDN usage across publishers and view-hours, over time.

use crate::context::ReproContext;
use crate::figures::helpers::{endpoints, share_series, ShareKind};
use crate::result::{Check, ExperimentResult};
use vmp_analytics::columns::CDN;
use vmp_core::cdn::CdnName;

/// Runs the Fig 11 regeneration.
pub fn run(ctx: &ReproContext) -> ExperimentResult {
    let mut result = ExperimentResult::new("fig11", "Fig 11: CDN prevalence over 27 months");

    let a = share_series(
        &ctx.store,
        "Fig 11(a): % of publishers using each major CDN",
        &CdnName::MAJORS,
        CDN,
        ShareKind::Publishers,
    );
    let b = share_series(
        &ctx.store,
        "Fig 11(b): % of view-hours served by each major CDN",
        &CdnName::MAJORS,
        CDN,
        ShareKind::ViewHours,
    );

    // Paper: CDN A used by ≈80% of publishers (C ≈30%), stable over time;
    // by view-hours A loses dominance — A, B, C each end at 20–35% with the
    // top-5 CDNs carrying >93% of all view-hours.
    if let Some((a_start, a_end)) = endpoints(&a, "CDN-A") {
        result.checks.push(Check::in_range("fig11a: CDN A ≈80% of publishers", a_end, 65.0, 92.0));
        result.checks.push(Check::new(
            "fig11a: membership roughly stable",
            (a_end - a_start).abs() < 15.0,
            format!("{a_start:.1}% → {a_end:.1}%"),
        ));
    }
    if let Some((_, c_end)) = endpoints(&a, "CDN-C") {
        result.checks.push(Check::in_range("fig11a: CDN C ≈30% of publishers", c_end, 20.0, 45.0));
    }
    if let (Some((a_vh_start, a_vh_end)), Some((_, b_vh_end)), Some((_, c_vh_end))) = (
        endpoints(&b, "CDN-A"),
        endpoints(&b, "CDN-B"),
        endpoints(&b, "CDN-C"),
    ) {
        result.checks.push(Check::new(
            "fig11b: CDN A's VH share declines",
            a_vh_end < a_vh_start,
            format!("{a_vh_start:.1}% → {a_vh_end:.1}%"),
        ));
        for (name, v) in [("A", a_vh_end), ("B", b_vh_end), ("C", c_vh_end)] {
            result.checks.push(Check::in_range(
                format!("fig11b: CDN {name} ends at 20-35% of VH"),
                v,
                15.0,
                42.0,
            ));
        }
    }
    // Top-5 concentration (§4.3: >93%).
    let last = ctx.store.latest_snapshot().expect("data");
    let shares = vmp_analytics::columns::vh_share(&ctx.store, last, CDN);
    let top5: f64 = CdnName::MAJORS.iter().filter_map(|c| shares.get(c)).sum();
    result.checks.push(Check::in_range("§4.3: top-5 CDNs carry >93% of VH", top5, 88.0, 100.0));
    let distinct = shares.len();
    result.notes.push(format!(
        "{distinct} distinct CDNs observed in the last snapshot (paper: 36 across the study)."
    ));

    result.series.push(a);
    result.series.push(b);
    result
}

//! Experiment result types.

use serde::Serialize;
use std::fmt;
use vmp_analytics::report::{Series, Table};

/// A qualitative assertion encoding one of the paper's claims about the
/// artifact (e.g. "HLS supported by ≈91% of publishers in the last
/// snapshot"). Integration tests fail when a check fails.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Check {
    /// Short name.
    pub name: String,
    /// Whether it held on this run.
    pub passed: bool,
    /// Measured-vs-expected detail.
    pub detail: String,
}

impl Check {
    /// Builds a check from a predicate and detail text.
    pub fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Check {
        Check { name: name.into(), passed, detail: detail.into() }
    }

    /// Checks that `value` lies in `[lo, hi]`.
    pub fn in_range(name: impl Into<String>, value: f64, lo: f64, hi: f64) -> Check {
        Check {
            name: name.into(),
            passed: value >= lo && value <= hi,
            detail: format!("measured {value:.2}, expected [{lo:.2}, {hi:.2}]"),
        }
    }
}

/// Everything one driver produces.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Experiment ID (`fig02`, ...).
    pub id: String,
    /// Human title (paper artifact name).
    pub title: String,
    /// Rendered tables.
    pub tables: Vec<Table>,
    /// Rendered series.
    pub series: Vec<Series>,
    /// Free-form notes (caveats, paper-vs-measured commentary).
    pub notes: Vec<String>,
    /// Qualitative checks.
    pub checks: Vec<Check>,
    /// Wall-clock time this experiment took (stamped by the dispatcher).
    pub wall_time_secs: f64,
    /// Per-stage seconds spent, from span-histogram deltas over the run
    /// (stage name → seconds).
    pub stages: Vec<(String, f64)>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: impl Into<String>) -> ExperimentResult {
        ExperimentResult {
            id: id.to_string(),
            title: title.into(),
            tables: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
            checks: Vec::new(),
            wall_time_secs: 0.0,
            stages: Vec::new(),
        }
    }

    /// Whether every check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Names of failed checks.
    pub fn failures(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n=== [{}] {} ===", self.id, self.title)?;
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        for s in &self.series {
            writeln!(f, "{s}")?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        for c in &self.checks {
            writeln!(
                f,
                "check {} {}: {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            )?;
        }
        if self.wall_time_secs > 0.0 {
            let stages: Vec<String> = self
                .stages
                .iter()
                .map(|(name, secs)| format!("{name} {secs:.3}s"))
                .collect();
            write!(f, "time: {:.3}s", self.wall_time_secs)?;
            if !stages.is_empty() {
                write!(f, " ({})", stages.join(", "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_check() {
        assert!(Check::in_range("x", 5.0, 4.0, 6.0).passed);
        assert!(!Check::in_range("x", 7.0, 4.0, 6.0).passed);
        assert!(Check::in_range("x", 4.0, 4.0, 6.0).passed);
    }

    #[test]
    fn result_aggregation_and_display() {
        let mut r = ExperimentResult::new("fig99", "Demo");
        r.checks.push(Check::new("a", true, "ok"));
        r.checks.push(Check::new("b", false, "bad"));
        assert!(!r.all_passed());
        assert_eq!(r.failures().len(), 1);
        let text = r.to_string();
        assert!(text.contains("check PASS a"));
        assert!(text.contains("check FAIL b"));
        assert!(text.contains("[fig99] Demo"));
    }
}

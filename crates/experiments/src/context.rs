//! Shared experiment context: one generated ecosystem + ingested telemetry.
//!
//! Generation and ingest run as one streaming pipeline: the sharded
//! [`ViewStream`] hands fixed-size view batches straight to the analytics
//! [`IngestPipeline`], so the full view vector never exists in memory. At
//! the default volume (`scale_factor == 1`) the rows are retained and every
//! segment stays resident — byte-identical to the old materialize-then-sort
//! ingest. At larger volumes (`repro --scale N`) the raw rows are dropped
//! after their columns are built and sealed segments spill to disk, keeping
//! RSS roughly flat in the scale factor.

use std::path::PathBuf;

use vmp_analytics::segstore::SpillConfig;
use vmp_analytics::store::{IngestOptions, IngestPipeline, MaskedStore, ViewStore};
use vmp_core::ids::PublisherId;
use vmp_synth::ecosystem::{Dataset, EcosystemConfig};
use vmp_synth::stream::ViewStream;

/// How big a run to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full 54-snapshot run (the EXPERIMENTS.md numbers).
    Full,
    /// Reduced run for CI / quick iteration.
    Quick,
}

/// The context shared by all ecosystem-driven experiments.
pub struct ReproContext {
    /// The generated ecosystem (views streamed into the store at ingest —
    /// row accessors on the dataset fail loudly).
    pub dataset: Dataset,
    /// Ingested telemetry.
    pub store: ViewStore,
    /// View-volume multiplier this context was generated with.
    pub scale_factor: u64,
}

impl std::fmt::Debug for ReproContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReproContext")
            .field("views", &self.store.len())
            .field("scale_factor", &self.scale_factor)
            .finish_non_exhaustive()
    }
}

impl ReproContext {
    /// Generates the ecosystem with the default master seed.
    pub fn new(scale: Scale) -> ReproContext {
        ReproContext::with_seed(scale, None)
    }

    /// Generates the ecosystem, overriding the master seed when given
    /// (`repro --seed N`); `None` keeps the config default, so published
    /// EXPERIMENTS.md numbers stay reproducible.
    pub fn with_seed(scale: Scale, seed: Option<u64>) -> ReproContext {
        ReproContext::with_options(scale, seed, 1, None)
    }

    /// Full control: view-volume multiplier (`repro --scale N`) and an
    /// explicit spill directory. `scale_factor > 1` drops raw rows after
    /// the columnar build (columnar queries are unaffected; row iteration
    /// becomes a loud error); a spill directory additionally moves sealed
    /// segments to disk under an LRU hot cache. Library code never picks
    /// the directory itself — the binary does, so no `env` reads happen
    /// outside `crates/obs`.
    pub fn with_options(
        scale: Scale,
        seed: Option<u64>,
        scale_factor: u64,
        spill_dir: Option<PathBuf>,
    ) -> ReproContext {
        let scale_factor = scale_factor.max(1);
        let mut config = match scale {
            Scale::Full => EcosystemConfig {
                snapshot_stride: 2,
                ..EcosystemConfig::default()
            },
            Scale::Quick => EcosystemConfig::small(),
        };
        if let Some(seed) = seed {
            config.seed = seed;
        }
        config.view_gen.volume_scale = scale_factor;
        let options = IngestOptions {
            drop_rows: scale_factor > 1,
            spill: spill_dir.map(SpillConfig::new),
        };
        let mut stream = ViewStream::new(config);
        let mut pipeline = IngestPipeline::new(options);
        {
            let _span = vmp_obs::span("pipeline.ingest");
            while let Some(batch) = stream.next_batch() {
                pipeline.push_batch(batch.views);
            }
        }
        let store = pipeline.finish();
        let dataset = stream.into_dataset();
        ReproContext { dataset, store, scale_factor }
    }

    /// A zero-copy view of the store excluding the given publishers
    /// (Fig 2(c) / 6(b)) — a bitmask over the same segments, not a
    /// re-ingested copy.
    pub fn store_excluding(&self, excluded: &[PublisherId]) -> MaskedStore<'_> {
        self.store.excluding(excluded)
    }

    /// The DASH-first / largest publishers (paper's anonymized `N`).
    pub fn dash_first_publishers(&self) -> Vec<PublisherId> {
        self.dataset
            .profiles
            .iter()
            .filter(|p| p.dash_first)
            .map(|p| p.publisher.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds() {
        let ctx = ReproContext::new(Scale::Quick);
        assert!(!ctx.store.is_empty());
        assert_eq!(
            ctx.dash_first_publishers().len(),
            vmp_synth::trends::DASH_FIRST_PUBLISHERS
        );
    }

    #[test]
    fn exclusion_removes_publishers() {
        let ctx = ReproContext::new(Scale::Quick);
        let excluded = ctx.dash_first_publishers();
        let filtered = ctx.store_excluding(&excluded);
        assert!(filtered.len() < ctx.store.len());
        for v in filtered.all() {
            assert!(!excluded.contains(&v.view.record.publisher));
        }
    }

    /// The streaming context must see exactly the views a materialized
    /// generation produces, in the same order.
    #[test]
    fn streamed_ingest_matches_materialized_ingest() {
        let ctx = ReproContext::new(Scale::Quick);
        let mut dataset = Dataset::generate(EcosystemConfig::small());
        let reference = ViewStore::ingest(dataset.take_views());
        assert_eq!(ctx.store.len(), reference.len());
        assert_eq!(ctx.store.snapshots(), reference.snapshots());
        for (a, b) in ctx.store.iter_segments().zip(reference.iter_segments()) {
            assert_eq!(a.publishers(), b.publishers());
            assert_eq!(a.protocols(), b.protocols());
            assert_eq!(a.players(), b.players());
            assert_eq!(a.cdn_masks(), b.cdn_masks());
            assert_eq!(a.hours(), b.hours());
            assert_eq!(a.weights(), b.weights());
        }
    }

    /// Out-of-core mode: rows dropped, segments spilled, columnar results
    /// identical to the resident run.
    #[test]
    fn spilled_context_matches_resident_context() {
        let resident = ReproContext::new(Scale::Quick);
        let dir = std::env::temp_dir()
            .join(format!("vmp-spill-test-{}", std::process::id()));
        let spilled = ReproContext::with_options(Scale::Quick, None, 1, Some(dir.clone()));
        assert!(spilled.store.spill_enabled());
        for (a, b) in resident.store.iter_segments().zip(spilled.store.iter_segments()) {
            assert_eq!(a.publishers(), b.publishers());
            assert_eq!(a.hours(), b.hours());
            assert_eq!(a.weights(), b.weights());
        }
        drop(spilled);
        // The spill directory is cleaned up when the store drops.
        assert!(!dir.exists());
    }
}

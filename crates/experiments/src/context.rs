//! Shared experiment context: one generated ecosystem + ingested telemetry.

use vmp_analytics::store::{MaskedStore, ViewStore};
use vmp_core::ids::PublisherId;
use vmp_synth::ecosystem::{Dataset, EcosystemConfig};

/// How big a run to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full 54-snapshot run (the EXPERIMENTS.md numbers).
    Full,
    /// Reduced run for CI / quick iteration.
    Quick,
}

/// The context shared by all ecosystem-driven experiments.
pub struct ReproContext {
    /// The generated ecosystem (views moved out into the store at ingest).
    pub dataset: Dataset,
    /// Ingested telemetry.
    pub store: ViewStore,
}

impl std::fmt::Debug for ReproContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReproContext")
            .field("views", &self.store.len())
            .finish_non_exhaustive()
    }
}

impl ReproContext {
    /// Generates the ecosystem with the default master seed.
    pub fn new(scale: Scale) -> ReproContext {
        ReproContext::with_seed(scale, None)
    }

    /// Generates the ecosystem, overriding the master seed when given
    /// (`repro --seed N`); `None` keeps the config default, so published
    /// EXPERIMENTS.md numbers stay reproducible.
    pub fn with_seed(scale: Scale, seed: Option<u64>) -> ReproContext {
        let mut config = match scale {
            Scale::Full => EcosystemConfig {
                snapshot_stride: 2,
                ..EcosystemConfig::default()
            },
            Scale::Quick => EcosystemConfig::small(),
        };
        if let Some(seed) = seed {
            config.seed = seed;
        }
        let mut dataset = Dataset::generate(config);
        // The store is the single owner of the rows — no duplicate copy of
        // the whole batch lives on in the dataset.
        let store = ViewStore::ingest(dataset.take_views());
        ReproContext { dataset, store }
    }

    /// A zero-copy view of the store excluding the given publishers
    /// (Fig 2(c) / 6(b)) — a bitmask over the same segments, not a
    /// re-ingested copy.
    pub fn store_excluding(&self, excluded: &[PublisherId]) -> MaskedStore<'_> {
        self.store.excluding(excluded)
    }

    /// The DASH-first / largest publishers (paper's anonymized `N`).
    pub fn dash_first_publishers(&self) -> Vec<PublisherId> {
        self.dataset
            .profiles
            .iter()
            .filter(|p| p.dash_first)
            .map(|p| p.publisher.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds() {
        let ctx = ReproContext::new(Scale::Quick);
        assert!(!ctx.store.is_empty());
        assert_eq!(
            ctx.dash_first_publishers().len(),
            vmp_synth::trends::DASH_FIRST_PUBLISHERS
        );
    }

    #[test]
    fn exclusion_removes_publishers() {
        let ctx = ReproContext::new(Scale::Quick);
        let excluded = ctx.dash_first_publishers();
        let filtered = ctx.store_excluding(&excluded);
        assert!(filtered.len() < ctx.store.len());
        for v in filtered.all() {
            assert!(!excluded.contains(&v.view.record.publisher));
        }
    }
}

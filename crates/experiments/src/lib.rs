//! # vmp-experiments — one driver per table/figure of the paper
//!
//! Each driver regenerates its artifact from the synthetic ecosystem (or a
//! dedicated simulation for §6) and returns an [`ExperimentResult`]: the
//! printable tables/series plus a set of *qualitative checks* encoding the
//! paper's claims (orderings, crossovers, bounds). The `repro` binary runs
//! drivers and prints everything; the workspace integration tests assert
//! every check.
//!
//! The experiment IDs match DESIGN.md §3: `tab1`, `fig02` … `fig18`,
//! `summary`.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod context;
pub mod figures;
pub mod report;
pub mod result;

pub use context::{ReproContext, Scale};
pub use report::{validate_report, Diagnostics, ExperimentSummary, RunReport, REPORT_SCHEMA};
pub use result::{Check, ExperimentResult};

/// All paper-artifact experiment IDs in paper order.
pub const ALL_EXPERIMENTS: [&str; 19] = [
    "tab1", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "summary",
];

/// Ablation experiments beyond the paper (run with `repro --ablations` or
/// by ID).
pub const ABLATIONS: [&str; 4] = ["abl-abr", "abl-dedup", "abl-broker", "abl-live"];

/// Scenario experiments: dedicated simulations (fault injection,
/// resilience, health monitoring) that need only a seed, not the generated
/// ecosystem.
pub const SCENARIOS: [&str; 3] = ["resilience", "monitor", "live_event"];

/// Whether an experiment can run without the generated ecosystem (`repro`
/// skips the expensive dataset build when every requested ID is
/// standalone).
pub fn is_standalone(id: &str) -> bool {
    ABLATIONS.contains(&id) || SCENARIOS.contains(&id)
}

/// Runs one experiment by ID, stamping wall time and the per-stage latency
/// breakdown (from global-registry histogram deltas) onto the result.
pub fn run(id: &str, ctx: &ReproContext) -> Option<ExperimentResult> {
    timed(id, || dispatch(id, ctx))
}

/// Runs a standalone (ecosystem-free) experiment by ID with the given
/// master seed. Returns `None` for unknown or ecosystem-bound IDs.
pub fn run_standalone(id: &str, seed: u64) -> Option<ExperimentResult> {
    timed(id, || dispatch_standalone(id, seed))
}

/// The interned `'static` form of a known experiment ID, so per-experiment
/// trace slices can reuse the span API (span names are `&'static str`).
fn static_id(id: &str) -> Option<&'static str> {
    ALL_EXPERIMENTS
        .iter()
        .chain(ABLATIONS.iter())
        .chain(SCENARIOS.iter())
        .find(|&&known| known == id)
        .copied()
}

fn timed(id: &str, f: impl FnOnce() -> Option<ExperimentResult>) -> Option<ExperimentResult> {
    let before = vmp_obs::snapshot();
    let started = vmp_obs::Stopwatch::start();
    let _slice = static_id(id).map(vmp_obs::span);
    let mut result = f()?;
    result.wall_time_secs = started.elapsed_secs();
    result.stages = stage_breakdown(&before, &vmp_obs::snapshot());
    Some(result)
}

/// Per-stage seconds spent between two registry snapshots: the sum deltas
/// of every span histogram (spans record nanoseconds; `*_us` histograms
/// hold simulated virtual-clock values and are excluded).
fn stage_breakdown(
    before: &vmp_obs::RegistrySnapshot,
    after: &vmp_obs::RegistrySnapshot,
) -> Vec<(String, f64)> {
    after
        .histograms
        .iter()
        .filter(|(name, _)| !name.ends_with("_us"))
        .filter_map(|(name, h)| {
            let prior = before.histograms.get(name).map(|p| p.sum).unwrap_or(0);
            let delta_ns = h.sum.saturating_sub(prior);
            (delta_ns > 0).then(|| (name.clone(), delta_ns as f64 / 1e9))
        })
        .collect()
}

fn dispatch_standalone(id: &str, seed: u64) -> Option<ExperimentResult> {
    match id {
        "abl-abr" => Some(figures::ablations::run_abr()),
        "abl-dedup" => Some(figures::ablations::run_dedup()),
        "abl-broker" => Some(figures::ablations::run_broker()),
        "abl-live" => Some(figures::ablations::run_live_latency()),
        "resilience" => Some(figures::resilience::run(seed)),
        "monitor" => Some(figures::monitor::run(seed)),
        "live_event" => Some(figures::live_event::run(seed)),
        _ => None,
    }
}

fn dispatch(id: &str, ctx: &ReproContext) -> Option<ExperimentResult> {
    if is_standalone(id) {
        return dispatch_standalone(id, ctx.dataset.config.seed);
    }
    match id {
        "tab1" => Some(figures::tab1::run()),
        "fig02" => Some(figures::fig02::run(ctx)),
        "fig03" => Some(figures::fig03::run(ctx)),
        "fig04" => Some(figures::fig04::run(ctx)),
        "fig05" => Some(figures::fig05::run()),
        "fig06" => Some(figures::fig06::run(ctx)),
        "fig07" => Some(figures::fig07::run(ctx)),
        "fig08" => Some(figures::fig08::run(ctx)),
        "fig09" => Some(figures::fig09::run(ctx)),
        "fig10" => Some(figures::fig10::run(ctx)),
        "fig11" => Some(figures::fig11::run(ctx)),
        "fig12" => Some(figures::fig12::run(ctx)),
        "fig13" => Some(figures::fig13::run(ctx)),
        "fig14" => Some(figures::fig14::run(ctx)),
        "fig15" => Some(figures::fig15::run(ctx)),
        "fig16" => Some(figures::fig16::run(ctx)),
        "fig17" => Some(figures::fig17::run()),
        "fig18" => Some(figures::fig18::run(ctx)),
        "summary" => Some(figures::summary::run(ctx)),
        _ => None,
    }
}

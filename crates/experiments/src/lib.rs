//! # vmp-experiments — one driver per table/figure of the paper
//!
//! Each driver regenerates its artifact from the synthetic ecosystem (or a
//! dedicated simulation for §6) and returns an [`ExperimentResult`]: the
//! printable tables/series plus a set of *qualitative checks* encoding the
//! paper's claims (orderings, crossovers, bounds). The `repro` binary runs
//! drivers and prints everything; the workspace integration tests assert
//! every check.
//!
//! The experiment IDs match DESIGN.md §3: `tab1`, `fig02` … `fig18`,
//! `summary`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod figures;
pub mod result;

pub use context::{ReproContext, Scale};
pub use result::{Check, ExperimentResult};

/// All paper-artifact experiment IDs in paper order.
pub const ALL_EXPERIMENTS: [&str; 19] = [
    "tab1", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "summary",
];

/// Ablation experiments beyond the paper (run with `repro --ablations` or
/// by ID).
pub const ABLATIONS: [&str; 4] = ["abl-abr", "abl-dedup", "abl-broker", "abl-live"];

/// Runs one experiment by ID.
pub fn run(id: &str, ctx: &ReproContext) -> Option<ExperimentResult> {
    match id {
        "tab1" => Some(figures::tab1::run()),
        "fig02" => Some(figures::fig02::run(ctx)),
        "fig03" => Some(figures::fig03::run(ctx)),
        "fig04" => Some(figures::fig04::run(ctx)),
        "fig05" => Some(figures::fig05::run()),
        "fig06" => Some(figures::fig06::run(ctx)),
        "fig07" => Some(figures::fig07::run(ctx)),
        "fig08" => Some(figures::fig08::run(ctx)),
        "fig09" => Some(figures::fig09::run(ctx)),
        "fig10" => Some(figures::fig10::run(ctx)),
        "fig11" => Some(figures::fig11::run(ctx)),
        "fig12" => Some(figures::fig12::run(ctx)),
        "fig13" => Some(figures::fig13::run(ctx)),
        "fig14" => Some(figures::fig14::run(ctx)),
        "fig15" => Some(figures::fig15::run(ctx)),
        "fig16" => Some(figures::fig16::run(ctx)),
        "fig17" => Some(figures::fig17::run()),
        "fig18" => Some(figures::fig18::run(ctx)),
        "summary" => Some(figures::summary::run(ctx)),
        "abl-abr" => Some(figures::ablations::run_abr()),
        "abl-dedup" => Some(figures::ablations::run_dedup()),
        "abl-broker" => Some(figures::ablations::run_broker()),
        "abl-live" => Some(figures::ablations::run_live_latency()),
        _ => None,
    }
}

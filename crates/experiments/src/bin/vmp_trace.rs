//! `vmp-trace` — offline triage for `vmp-session-trace/1` captures.
//!
//! Reads the JSONL file written by `repro --session-trace PATH` and answers
//! the questions an on-call engineer asks of a wide-event store:
//!
//! ```text
//! vmp-trace summary FILE                      # capture stats + breakdowns
//! vmp-trace show FILE ID                      # full causal timeline of one session
//! vmp-trace grep FILE [--cdn N] [--publisher N] [--region N]
//!                     [--exit fatal|completed] [--kind NAME] [--anomaly NAME]
//! vmp-trace exemplars FILE SUBSTRING          # alerts matching SUBSTRING + their traces
//! vmp-trace chrome FILE ID [--out PATH]       # one session as Chrome trace_event JSON
//! ```
//!
//! The capture is deterministic, so any id printed here resolves to the
//! same trace on a re-run at the same seed — ids are stable handles, not
//! ephemeral row numbers.

use std::collections::BTreeMap;

use serde_json::Value;
use vmp_core::cdn::CdnName;
use vmp_obs::session_trace::{SessionTrace, TraceEventKind, NO_CDN, NO_PUBLISHER, NO_REGION};

/// `println!` that exits quietly instead of panicking when stdout's reader
/// goes away (std's `println!` panics on EPIPE, so `vmp-trace ... | head`
/// would otherwise abort mid-pipe).
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

/// One parsed capture file: header, traces, alert→exemplar lines.
struct Capture {
    header: Value,
    traces: Vec<SessionTrace>,
    alerts: Vec<(String, Vec<u64>)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => usage_exit(),
    };
    if matches!(cmd, "--help" | "-h" | "help") {
        usage_exit();
    }
    let (file, rest) = match rest.split_first() {
        Some((file, rest)) => (file.as_str(), rest),
        None => {
            eprintln!("{cmd}: missing capture FILE argument");
            std::process::exit(2);
        }
    };
    let capture = load_capture(file);
    match cmd {
        "summary" => summary(&capture),
        "show" => show(&capture, parse_id(rest)),
        "grep" => grep(&capture, rest),
        "exemplars" => exemplars(&capture, rest),
        "chrome" => chrome(&capture, rest),
        other => {
            eprintln!("unknown command '{other}'");
            usage_exit();
        }
    }
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: vmp-trace <summary|show|grep|exemplars|chrome> FILE [args]\n\
         \x20 summary FILE                    capture stats and breakdowns\n\
         \x20 show FILE ID                    full timeline of one session\n\
         \x20 grep FILE [--cdn N] [--publisher N] [--region N]\n\
         \x20                [--exit fatal|completed] [--kind NAME] [--anomaly NAME]\n\
         \x20 exemplars FILE SUBSTRING        alerts matching SUBSTRING + exemplar traces\n\
         \x20 chrome FILE ID [--out PATH]     Chrome trace_event JSON for one session"
    );
    std::process::exit(2);
}

fn parse_id(rest: &[String]) -> u64 {
    match rest.first().map(|s| s.parse::<u64>()) {
        Some(Ok(id)) => id,
        _ => {
            eprintln!("expected a numeric session ID");
            std::process::exit(2);
        }
    }
}

/// Parses the JSONL capture, classifying lines by their discriminating key.
fn load_capture(path: &str) -> Capture {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut header = None;
    let mut traces = Vec::new();
    let mut alerts = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}:{}: bad JSON: {e:?}", lineno + 1);
                std::process::exit(2);
            }
        };
        if v.get("schema").is_some() {
            header = Some(v);
        } else if v.get("session").is_some() {
            match SessionTrace::from_json(&v) {
                Ok(t) => traces.push(t),
                Err(e) => {
                    eprintln!("{path}:{}: bad trace line: {e}", lineno + 1);
                    std::process::exit(2);
                }
            }
        } else if let Some(alert) = v.get("alert").and_then(Value::as_str) {
            let ids = v
                .get("exemplars")
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(Value::as_u64).collect())
                .unwrap_or_default();
            alerts.push((alert.to_string(), ids));
        } else {
            eprintln!("{path}:{}: unrecognized line shape", lineno + 1);
            std::process::exit(2);
        }
    }
    let header = header.unwrap_or_else(|| {
        eprintln!("{path}: no `vmp-session-trace/1` header line found");
        std::process::exit(2);
    });
    if header.get("schema").and_then(Value::as_str) != Some("vmp-session-trace/1") {
        eprintln!("{path}: unsupported schema {:?}", header.get("schema"));
        std::process::exit(2);
    }
    Capture { header, traces, alerts }
}

fn header_u64(capture: &Capture, key: &str) -> u64 {
    capture.header.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn cdn_label(cdn: u8) -> String {
    if cdn == NO_CDN {
        return "-".to_string();
    }
    CdnName::from_dense_index(cdn as usize)
        .map_or_else(|| format!("cdn#{cdn}"), |c| c.to_string())
}

fn anomaly_label(t: &SessionTrace) -> String {
    use vmp_obs::session_trace::{
        ANOMALY_FATAL, ANOMALY_REBUFFER, ANOMALY_RETRY_DENIED, ANOMALY_SHED,
    };
    let names = [
        (ANOMALY_FATAL, "fatal"),
        (ANOMALY_REBUFFER, "rebuffer"),
        (ANOMALY_RETRY_DENIED, "retry_denied"),
        (ANOMALY_SHED, "shed"),
    ];
    let hits: Vec<&str> = names
        .iter()
        .filter(|(bit, _)| t.anomaly & bit != 0)
        .map(|(_, n)| *n)
        .collect();
    if hits.is_empty() { "normal".to_string() } else { hits.join("+") }
}

/// One-line digest of a trace, the `grep`/`exemplars` output unit.
fn digest(t: &SessionTrace) -> String {
    let publisher = if t.publisher == NO_PUBLISHER {
        "-".to_string()
    } else {
        t.publisher.to_string()
    };
    let region = if t.region == NO_REGION { "-".to_string() } else { t.region.to_string() };
    format!(
        "{:>12}  pub={:<4} cdn={:<6} region={:<2} exit={:<9} rebuf={:>6.3} {:<22} {} events",
        t.session,
        publisher,
        cdn_label(t.cdn),
        region,
        if t.fatal { "fatal" } else { "completed" },
        t.rebuffer_ratio,
        anomaly_label(t),
        t.events.len(),
    )
}

fn summary(capture: &Capture) {
    let seen = header_u64(capture, "seen");
    let kept = header_u64(capture, "kept");
    outln!(
        "capture: seed={} head_rate=1/{} byte_budget={}",
        header_u64(capture, "seed"),
        header_u64(capture, "head_rate"),
        header_u64(capture, "byte_budget"),
    );
    outln!(
        "sessions: {seen} seen, {kept} kept ({} tail-kept anomalous), {} dropped, {} bytes",
        header_u64(capture, "tail_kept"),
        header_u64(capture, "dropped"),
        header_u64(capture, "bytes"),
    );
    let fatal = capture.traces.iter().filter(|t| t.fatal).count();
    outln!("exits: {} completed, {} fatal", capture.traces.len() - fatal, fatal);

    let mut by_anomaly: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_cdn: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
    for t in &capture.traces {
        *by_anomaly.entry(anomaly_label(t)).or_default() += 1;
        *by_cdn.entry(cdn_label(t.cdn)).or_default() += 1;
        for e in &t.events {
            *by_kind.entry(e.kind.name()).or_default() += 1;
        }
    }
    outln!("anomalies:");
    for (label, n) in &by_anomaly {
        outln!("  {label:<22} {n}");
    }
    outln!("kept by primary cdn:");
    for (label, n) in &by_cdn {
        outln!("  {label:<22} {n}");
    }
    outln!("events across kept traces:");
    for (label, n) in &by_kind {
        outln!("  {label:<22} {n}");
    }
    outln!("alerts with exemplars: {}", capture.alerts.len());
}

fn show(capture: &Capture, id: u64) {
    let Some(t) = capture.traces.iter().find(|t| t.session == id) else {
        eprintln!(
            "session {id} is not in the kept set ({} traces); \
             try `grep` to list what survived sampling",
            capture.traces.len()
        );
        std::process::exit(1);
    };
    outln!("{}", digest(t));
    outln!(
        "  window: {:.3}s .. {:.3}s ({:.3}s on the fault clock)",
        t.start_clock,
        t.end_clock,
        t.end_clock - t.start_clock
    );
    for e in &t.events {
        outln!(
            "  {:>10.3}s  {:<14} cdn={:<6} code={:<6} value={:.4}",
            e.clock,
            e.kind.name(),
            cdn_label(e.cdn),
            e.code,
            e.value,
        );
    }
    let referencing: Vec<&str> = capture
        .alerts
        .iter()
        .filter(|(_, ids)| ids.contains(&id))
        .map(|(a, _)| a.as_str())
        .collect();
    if !referencing.is_empty() {
        outln!("  exemplar for:");
        for alert in referencing {
            outln!("    {alert}");
        }
    }
}

/// Filter set accumulated from `grep` flags; all present filters must match.
#[derive(Default)]
struct Filters {
    cdn: Option<u8>,
    publisher: Option<u64>,
    region: Option<u8>,
    fatal: Option<bool>,
    kind: Option<TraceEventKind>,
    anomaly: Option<String>,
}

fn flag_value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a String>) -> &'a str {
    match it.next() {
        Some(v) => v.as_str(),
        None => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    }
}

fn parse_filters(rest: &[String]) -> Filters {
    let mut f = Filters::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cdn" => match flag_value("--cdn", &mut it).parse::<u8>() {
                Ok(n) => f.cdn = Some(n),
                Err(_) => {
                    eprintln!("--cdn takes a dense index (0=A .. 4=E)");
                    std::process::exit(2);
                }
            },
            "--publisher" => match flag_value("--publisher", &mut it).parse::<u64>() {
                Ok(n) => f.publisher = Some(n),
                Err(_) => {
                    eprintln!("--publisher takes a numeric id");
                    std::process::exit(2);
                }
            },
            "--region" => match flag_value("--region", &mut it).parse::<u8>() {
                Ok(n) => f.region = Some(n),
                Err(_) => {
                    eprintln!("--region takes a numeric index");
                    std::process::exit(2);
                }
            },
            "--exit" => match flag_value("--exit", &mut it) {
                "fatal" => f.fatal = Some(true),
                "completed" => f.fatal = Some(false),
                other => {
                    eprintln!("--exit takes 'fatal' or 'completed', not '{other}'");
                    std::process::exit(2);
                }
            },
            "--kind" => {
                let name = flag_value("--kind", &mut it);
                match TraceEventKind::from_name(name) {
                    Some(k) => f.kind = Some(k),
                    None => {
                        eprintln!("unknown event kind '{name}'");
                        std::process::exit(2);
                    }
                }
            }
            "--anomaly" => f.anomaly = Some(flag_value("--anomaly", &mut it).to_string()),
            other => {
                eprintln!("unknown grep flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    f
}

fn grep(capture: &Capture, rest: &[String]) {
    let f = parse_filters(rest);
    let mut matched = 0usize;
    for t in &capture.traces {
        if f.cdn.is_some_and(|c| c != t.cdn) {
            continue;
        }
        if f.publisher.is_some_and(|p| p != t.publisher) {
            continue;
        }
        if f.region.is_some_and(|r| r != t.region) {
            continue;
        }
        if f.fatal.is_some_and(|x| x != t.fatal) {
            continue;
        }
        if f.kind.is_some_and(|k| !t.has_event(k)) {
            continue;
        }
        if f.anomaly.as_deref().is_some_and(|a| !anomaly_label(t).contains(a)) {
            continue;
        }
        outln!("{}", digest(t));
        matched += 1;
    }
    eprintln!("{matched} of {} kept traces matched", capture.traces.len());
}

fn exemplars(capture: &Capture, rest: &[String]) {
    let Some(needle) = rest.first() else {
        eprintln!("exemplars requires an alert SUBSTRING to match");
        std::process::exit(2);
    };
    let mut matched = 0usize;
    for (alert, ids) in &capture.alerts {
        if !alert.contains(needle.as_str()) {
            continue;
        }
        matched += 1;
        outln!("{alert}");
        if ids.is_empty() {
            outln!("  (no exemplar traces survived sampling in this window)");
        }
        for id in ids {
            match capture.traces.iter().find(|t| t.session == *id) {
                Some(t) => outln!("  {}", digest(t)),
                None => outln!("  {id:>12}  (id recorded but trace not in kept set)"),
            }
        }
    }
    if matched == 0 {
        eprintln!("no alert contains '{needle}' ({} alerts in capture)", capture.alerts.len());
        std::process::exit(1);
    }
}

/// Exports one session as Chrome `trace_event` JSON (load in
/// `chrome://tracing` or Perfetto). The session itself is a complete `X`
/// event; chunk fetches become nested `X` slices (they carry a duration);
/// everything else is an instant. Timestamps are fault-clock microseconds.
fn chrome(capture: &Capture, rest: &[String]) {
    let id = parse_id(rest);
    let mut out_path = None;
    let mut it = rest.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = Some(flag_value("--out", &mut it).to_string()),
            other => {
                eprintln!("unknown chrome flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(t) = capture.traces.iter().find(|t| t.session == id) else {
        eprintln!("session {id} is not in the kept set");
        std::process::exit(1);
    };
    let us = |secs: f64| Value::F64(secs * 1e6);
    let mut events = Vec::new();
    let base = vec![
        ("pid".to_string(), Value::U64(t.session)),
        ("tid".to_string(), Value::U64(0)),
    ];
    let mut session_event = vec![
        ("name".to_string(), Value::Str(format!("session {}", t.session))),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("ts".to_string(), us(t.start_clock)),
        ("dur".to_string(), us(t.end_clock - t.start_clock)),
        ("cat".to_string(), Value::Str("session".to_string())),
    ];
    session_event.extend(base.clone());
    events.push(Value::Object(session_event));
    for e in &t.events {
        let args = Value::Object(vec![
            ("cdn".to_string(), Value::Str(cdn_label(e.cdn))),
            ("code".to_string(), Value::U64(e.code as u64)),
            ("value".to_string(), Value::F64(e.value)),
        ]);
        let mut fields = vec![
            ("name".to_string(), Value::Str(e.kind.name().to_string())),
            ("cat".to_string(), Value::Str("event".to_string())),
        ];
        if e.kind == TraceEventKind::ChunkFetch && e.value > 0.0 {
            fields.push(("ph".to_string(), Value::Str("X".to_string())));
            fields.push(("ts".to_string(), us(e.clock - e.value)));
            fields.push(("dur".to_string(), us(e.value)));
        } else {
            fields.push(("ph".to_string(), Value::Str("i".to_string())));
            fields.push(("s".to_string(), Value::Str("t".to_string())));
            fields.push(("ts".to_string(), us(e.clock)));
        }
        fields.extend(base.clone());
        fields.push(("args".to_string(), args));
        events.push(Value::Object(fields));
    }
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    let json = serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string());
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path} ({} trace events)", t.events.len() + 1);
        }
        None => outln!("{json}"),
    }
}

//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro [--quick] [--json PATH] [ID ...]
//! ```
//! With no IDs, runs everything in paper order. `--quick` uses the reduced
//! ecosystem (CI-sized); the default is the full EXPERIMENTS.md run.

use std::io::Write;
use vmp_experiments::{run, ReproContext, Scale, ABLATIONS, ALL_EXPERIMENTS};

fn main() {
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--ablations" => ids.extend(ABLATIONS.iter().map(|s| s.to_string())),
            "--json" => {
                json_path = args.next();
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: repro [--quick] [--ablations] [--json PATH] [ID ...]");
                eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                eprintln!("ablations:   {}", ABLATIONS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) && !ABLATIONS.contains(&id.as_str()) {
            eprintln!(
                "unknown experiment '{id}'; known: {} {}",
                ALL_EXPERIMENTS.join(" "),
                ABLATIONS.join(" ")
            );
            std::process::exit(2);
        }
    }

    eprintln!(
        "generating ecosystem ({}), running {} experiment(s)...",
        match scale {
            Scale::Full => "full",
            Scale::Quick => "quick",
        },
        ids.len()
    );
    let started = std::time::Instant::now();
    let ctx = ReproContext::new(scale);
    eprintln!(
        "ecosystem ready: {} publishers, {} weighted view samples, {} snapshots ({:.1}s)",
        ctx.dataset.profiles.len(),
        ctx.dataset.views.len(),
        ctx.dataset.snapshots.len(),
        started.elapsed().as_secs_f64()
    );

    let mut results = Vec::new();
    let mut failures = 0usize;
    for id in &ids {
        let result = run(id, &ctx).expect("id validated above");
        println!("{result}");
        failures += result.failures().len();
        results.push(result);
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&results).expect("results serialize");
        let mut file = std::fs::File::create(&path).expect("create json output");
        file.write_all(json.as_bytes()).expect("write json output");
        eprintln!("wrote {path}");
    }

    let total_checks: usize = results.iter().map(|r| r.checks.len()).sum();
    eprintln!(
        "\n{} experiments, {}/{} checks passed ({:.1}s total)",
        results.len(),
        total_checks - failures,
        total_checks,
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

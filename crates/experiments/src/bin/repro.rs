//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro [--quick] [--scale N] [--seed N] [--experiment ID] [--json PATH]
//!       [--metrics PATH] [--trace PATH] [--report PATH] [--flame PATH]
//!       [--session-trace PATH] [--sample-ms N] [ID ...]
//! ```
//! With no IDs (or the alias `all`), runs everything in paper order.
//! `--quick` uses the reduced ecosystem (CI-sized); the default is the full
//! EXPERIMENTS.md run. `--scale N` multiplies the view volume (1 = the
//! paper's default ≈1.2M samples); above 1 the run goes out-of-core —
//! generation streams straight into ingest, raw rows are dropped after the
//! columnar build, and sealed segments spill to a process-unique temp
//! directory under an LRU hot cache, so RSS stays roughly flat while the
//! row count grows 100×+. `--seed N` overrides the master seed;
//! `--experiment ID` is equivalent to a bare ID; `--metrics PATH` dumps a
//! JSON snapshot of the observability registry after the run; `--trace
//! PATH` records every span, monitor window sample, and alert as Chrome
//! `trace_event` JSON (load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>).
//!
//! Telemetry-plane outputs:
//!
//! - `--report PATH` writes the unified `vmp-report/1` run report (JSON)
//!   plus a rendered Markdown twin next to it (`PATH` with extension
//!   `.md`): per-experiment outcomes, top-level stage table, span profile,
//!   resource timeline, metrics snapshot, and drop diagnostics. Arms the
//!   span profiler and the background resource sampler.
//! - `--flame PATH` writes the aggregated span profile as folded stacks
//!   (`path;to;span COUNT` lines, inferno/flamegraph.pl compatible). Arms
//!   the span profiler.
//! - `--sample-ms N` sets the resource-sampler interval (default 50 ms).
//! - `--session-trace PATH` arms the per-session wide-event tracer and
//!   writes the kept traces as `vmp-session-trace/1` JSONL: one header
//!   line, one line per kept session (head-sampled ~1/16 of normal
//!   sessions plus *every* anomalous one, under a deterministic byte
//!   budget), and one line per alert with its exemplar trace ids. The
//!   kept set is a pure function of the master seed — two runs at the
//!   same seed produce byte-identical files.
//!
//! When every requested ID is standalone (ablations and scenarios such as
//! `resilience` or `monitor`), the ecosystem is not generated at all.
//!
//! Drop/saturation diagnostics (obs event-ring evictions, trace-collector
//! saturation, timeline evictions) are always surfaced on stderr when
//! nonzero, and embedded in `--json` / `--report` output.

use serde::Serialize;
use vmp_experiments::{
    is_standalone, run, run_standalone, Diagnostics, ExperimentResult, ReproContext, RunReport,
    Scale, ABLATIONS, ALL_EXPERIMENTS, SCENARIOS,
};

/// Schema of the `--json` summary document.
const RUN_SCHEMA: &str = "vmp-run/1";

/// The `--json` output: full experiment results plus drop diagnostics.
#[derive(Debug, Serialize)]
struct JsonSummary {
    schema: String,
    seed: u64,
    scale: String,
    scale_factor: u64,
    experiments: Vec<ExperimentResult>,
    diagnostics: Diagnostics,
}

fn main() {
    let mut scale = Scale::Full;
    let mut scale_factor: u64 = 1;
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut flame_path: Option<String> = None;
    let mut session_trace_path: Option<String> = None;
    let mut sample_ms: u64 = 50;
    let mut seed: Option<u64> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--scale" => {
                scale_factor = match args.next().map(|s| s.parse::<u64>()) {
                    Some(Ok(n)) if n > 0 => n,
                    _ => {
                        eprintln!("--scale requires a positive integer multiplier");
                        std::process::exit(2);
                    }
                };
            }
            "--ablations" => ids.extend(ABLATIONS.iter().map(|s| s.to_string())),
            "--experiment" => match args.next() {
                Some(id) => push_id(&mut ids, &id),
                None => {
                    eprintln!("--experiment requires an ID");
                    std::process::exit(2);
                }
            },
            "--json" => {
                json_path = args.next();
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            "--metrics" => {
                metrics_path = args.next();
                if metrics_path.is_none() {
                    eprintln!("--metrics requires a path");
                    std::process::exit(2);
                }
            }
            "--trace" => {
                trace_path = args.next();
                if trace_path.is_none() {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }
            }
            "--report" => {
                report_path = args.next();
                if report_path.is_none() {
                    eprintln!("--report requires a path");
                    std::process::exit(2);
                }
            }
            "--flame" => {
                flame_path = args.next();
                if flame_path.is_none() {
                    eprintln!("--flame requires a path");
                    std::process::exit(2);
                }
            }
            "--session-trace" => {
                session_trace_path = args.next();
                if session_trace_path.is_none() {
                    eprintln!("--session-trace requires a path");
                    std::process::exit(2);
                }
            }
            "--sample-ms" => {
                sample_ms = match args.next().map(|s| s.parse::<u64>()) {
                    Some(Ok(n)) if n > 0 => n,
                    _ => {
                        eprintln!("--sample-ms requires a positive integer (milliseconds)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                seed = match args.next().map(|s| s.parse::<u64>()) {
                    Some(Ok(n)) => Some(n),
                    _ => {
                        eprintln!("--seed requires a u64 value");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick] [--scale N] [--seed N] [--experiment ID] \
                     [--ablations] [--json PATH] [--metrics PATH] [--trace PATH] \
                     [--report PATH] [--flame PATH] [--session-trace PATH] \
                     [--sample-ms N] [ID ...]"
                );
                eprintln!("experiments: all {}", ALL_EXPERIMENTS.join(" "));
                eprintln!("ablations:   {}", ABLATIONS.join(" "));
                eprintln!("scenarios:   {}", SCENARIOS.join(" "));
                return;
            }
            other => push_id(&mut ids, other),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str())
            && !ABLATIONS.contains(&id.as_str())
            && !SCENARIOS.contains(&id.as_str())
        {
            eprintln!(
                "unknown experiment '{id}'; known: all {} {} {}",
                ALL_EXPERIMENTS.join(" "),
                ABLATIONS.join(" "),
                SCENARIOS.join(" ")
            );
            std::process::exit(2);
        }
    }

    // Tracing must be armed before any work runs so the collector sees
    // every span and monitor sample from the start. Likewise the profiler:
    // arming it here pins this thread as the profiling root, so the
    // depth-1 `run.*` spans below become the report's stage table.
    if trace_path.is_some() {
        vmp_obs::set_tracing(true);
    }
    if report_path.is_some() || flame_path.is_some() {
        vmp_obs::set_profiling(true);
    }
    let sampler = report_path.is_some().then(|| vmp_obs::ResourceSampler::start(sample_ms));

    let started = std::time::Instant::now();
    // Standalone experiments (ablations, fault-injection scenarios) only
    // need a seed; skip the expensive ecosystem generation when no
    // requested ID uses it.
    let needs_ctx = ids.iter().any(|id| !is_standalone(id));
    let master_seed =
        seed.unwrap_or_else(|| vmp_synth::ecosystem::EcosystemConfig::default().seed);
    // Session tracing keys its head sampler and reservoir off the master
    // seed, so it must be armed after the seed is resolved but before any
    // session plays (ecosystem generation included).
    if session_trace_path.is_some() {
        vmp_obs::session_trace::arm(vmp_obs::TraceConfig {
            seed: master_seed,
            ..vmp_obs::TraceConfig::default()
        });
    }
    let scale_name = if !needs_ctx {
        "standalone"
    } else {
        match scale {
            Scale::Full => "full",
            Scale::Quick => "quick",
        }
    };
    let ctx = if needs_ctx {
        eprintln!(
            "generating ecosystem ({scale_name}, x{scale_factor}), running {} experiment(s)...",
            ids.len()
        );
        // Out-of-core runs spill sealed segments under a process-unique
        // temp directory (removed when the store drops). The directory is
        // chosen here — in the binary — so library code stays free of
        // environment reads.
        let spill_dir = (scale_factor > 1).then(|| {
            std::env::temp_dir().join(format!("vmp-spill-{}", std::process::id()))
        });
        let gen_span = vmp_obs::span("run.generate");
        let ctx = ReproContext::with_options(scale, seed, scale_factor, spill_dir);
        drop(gen_span);
        eprintln!(
            "ecosystem ready: {} publishers, {} weighted view samples, {} snapshots ({:.1}s)",
            ctx.dataset.profiles.len(),
            ctx.store.len(),
            ctx.dataset.snapshots.len(),
            started.elapsed().as_secs_f64()
        );
        Some(ctx)
    } else {
        eprintln!("running {} standalone experiment(s) (no ecosystem needed)...", ids.len());
        None
    };

    let mut results = Vec::new();
    let mut failures = 0usize;
    let experiments_span = vmp_obs::span("run.experiments");
    for id in &ids {
        let result = match &ctx {
            Some(ctx) => run(id, ctx),
            None => run_standalone(id, master_seed),
        }
        .expect("id validated above");
        println!("{result}");
        failures += result.failures().len();
        results.push(result);
    }
    drop(experiments_span);

    // Freeze run telemetry before the export phase: stop the sampler (its
    // final boundary sample lands first) and assemble the report while the
    // profiler is still armed.
    let wall_time_secs = started.elapsed().as_secs_f64();
    let timeline = match sampler {
        Some(s) => s.stop(),
        None => vmp_obs::Timeline::empty(),
    };
    let report = report_path
        .is_some()
        .then(|| {
            RunReport::collect(
                master_seed,
                scale_name,
                scale_factor,
                &results,
                wall_time_secs,
                timeline.clone(),
            )
        });
    let diagnostics = match &report {
        Some(r) => r.diagnostics.clone(),
        None => Diagnostics::collect(&results, timeline.dropped),
    };

    let export_span = vmp_obs::span("run.export");
    // Session-trace finalize comes first: it records the `trace.*`
    // counters, which the `--metrics` snapshot below must include.
    if let Some(path) = session_trace_path {
        match vmp_obs::session_trace::finalize() {
            Some(report) => {
                if let Err(e) = std::fs::write(&path, report.to_jsonl()) {
                    eprintln!("cannot write --session-trace output to {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!(
                    "wrote {path} ({} traces kept of {} sessions, {} tail-kept, \
                     {} dropped, {} bytes)",
                    report.kept(),
                    report.seen,
                    report.tail_kept,
                    report.dropped,
                    report.bytes
                );
            }
            None => eprintln!("warning: session tracing was never armed; {path} not written"),
        }
    }

    if let Some(path) = json_path {
        let summary = JsonSummary {
            schema: RUN_SCHEMA.to_string(),
            seed: master_seed,
            scale: scale_name.to_string(),
            scale_factor,
            experiments: results.clone(),
            diagnostics: diagnostics.clone(),
        };
        let json = serde_json::to_string_pretty(&summary).expect("results serialize");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write --json output to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = metrics_path {
        let snapshot = vmp_obs::snapshot();
        if let Err(e) = std::fs::write(&path, snapshot.to_json_pretty()) {
            eprintln!("cannot write --metrics output to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {path} ({} counters, {} histograms, {} events)",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            snapshot.events.len()
        );
    }

    if let Some(path) = trace_path {
        let json = vmp_obs::chrome_trace_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write --trace output to {path}: {e}");
            std::process::exit(2);
        }
        let dropped = vmp_obs::trace_dropped();
        eprintln!(
            "wrote {path} ({} trace events{})",
            vmp_obs::trace_events().len(),
            if dropped > 0 { format!(", {dropped} dropped at capacity") } else { String::new() }
        );
    }

    if let (Some(path), Some(report)) = (&report_path, &report) {
        if let Err(e) = std::fs::write(path, report.to_json_pretty()) {
            eprintln!("cannot write --report output to {path}: {e}");
            std::process::exit(2);
        }
        let md_path = std::path::Path::new(path).with_extension("md");
        if let Err(e) = std::fs::write(&md_path, report.to_markdown()) {
            eprintln!("cannot write report markdown to {}: {e}", md_path.display());
            std::process::exit(2);
        }
        eprintln!(
            "wrote {path} + {} ({} stages, {} profile paths, {} timeline samples)",
            md_path.display(),
            report.stages.len(),
            report.profile.len(),
            report.timeline.samples.len()
        );
    }
    drop(export_span);

    // The flame file goes last, after the `run.export` span closed, so the
    // folded profile covers every top-level phase of this run.
    if let Some(path) = flame_path {
        let folded = vmp_obs::folded_stacks();
        if folded.is_empty() {
            eprintln!("warning: span profile is empty; {path} will have no stacks");
        }
        if let Err(e) = std::fs::write(&path, &folded) {
            eprintln!("cannot write --flame output to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path} ({} folded stack lines)", folded.lines().count());
    }

    for warning in &diagnostics.warnings {
        eprintln!("warning: {warning}");
    }

    let total_checks: usize = results.iter().map(|r| r.checks.len()).sum();
    eprintln!(
        "\n{} experiments, {}/{} checks passed ({:.1}s total)",
        results.len(),
        total_checks - failures,
        total_checks,
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Pushes an experiment ID, expanding the `all` alias to the full paper
/// sequence.
fn push_id(ids: &mut Vec<String>, id: &str) {
    if id == "all" {
        ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    } else {
        ids.push(id.to_string());
    }
}

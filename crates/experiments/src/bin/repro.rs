//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro [--quick] [--seed N] [--experiment ID] [--json PATH] [--metrics PATH] [--trace PATH] [ID ...]
//! ```
//! With no IDs, runs everything in paper order. `--quick` uses the reduced
//! ecosystem (CI-sized); the default is the full EXPERIMENTS.md run.
//! `--seed N` overrides the master seed; `--experiment ID` is equivalent to
//! a bare ID; `--metrics PATH` dumps a JSON snapshot of the observability
//! registry (counters, histograms with p50/p90/p99, recent pipeline events)
//! after the run; `--trace PATH` records every span, monitor window sample,
//! and alert as Chrome `trace_event` JSON (load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>). When every requested ID is standalone
//! (ablations and scenarios such as `resilience` or `monitor`), the
//! ecosystem is not generated at all.

use vmp_experiments::{
    is_standalone, run, run_standalone, ReproContext, Scale, ABLATIONS, ALL_EXPERIMENTS, SCENARIOS,
};

fn main() {
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--ablations" => ids.extend(ABLATIONS.iter().map(|s| s.to_string())),
            "--experiment" => match args.next() {
                Some(id) => ids.push(id),
                None => {
                    eprintln!("--experiment requires an ID");
                    std::process::exit(2);
                }
            },
            "--json" => {
                json_path = args.next();
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            "--metrics" => {
                metrics_path = args.next();
                if metrics_path.is_none() {
                    eprintln!("--metrics requires a path");
                    std::process::exit(2);
                }
            }
            "--trace" => {
                trace_path = args.next();
                if trace_path.is_none() {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }
            }
            "--seed" => {
                seed = match args.next().map(|s| s.parse::<u64>()) {
                    Some(Ok(n)) => Some(n),
                    _ => {
                        eprintln!("--seed requires a u64 value");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick] [--seed N] [--experiment ID] [--ablations] [--json PATH] [--metrics PATH] [--trace PATH] [ID ...]"
                );
                eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
                eprintln!("ablations:   {}", ABLATIONS.join(" "));
                eprintln!("scenarios:   {}", SCENARIOS.join(" "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str())
            && !ABLATIONS.contains(&id.as_str())
            && !SCENARIOS.contains(&id.as_str())
        {
            eprintln!(
                "unknown experiment '{id}'; known: {} {} {}",
                ALL_EXPERIMENTS.join(" "),
                ABLATIONS.join(" "),
                SCENARIOS.join(" ")
            );
            std::process::exit(2);
        }
    }

    // Tracing must be armed before any work runs so the collector sees
    // every span and monitor sample from the start.
    if trace_path.is_some() {
        vmp_obs::set_tracing(true);
    }

    let started = std::time::Instant::now();
    // Standalone experiments (ablations, fault-injection scenarios) only
    // need a seed; skip the expensive ecosystem generation when no
    // requested ID uses it.
    let needs_ctx = ids.iter().any(|id| !is_standalone(id));
    let master_seed =
        seed.unwrap_or_else(|| vmp_synth::ecosystem::EcosystemConfig::default().seed);
    let ctx = if needs_ctx {
        eprintln!(
            "generating ecosystem ({}), running {} experiment(s)...",
            match scale {
                Scale::Full => "full",
                Scale::Quick => "quick",
            },
            ids.len()
        );
        let ctx = ReproContext::with_seed(scale, seed);
        eprintln!(
            "ecosystem ready: {} publishers, {} weighted view samples, {} snapshots ({:.1}s)",
            ctx.dataset.profiles.len(),
            ctx.store.len(),
            ctx.dataset.snapshots.len(),
            started.elapsed().as_secs_f64()
        );
        Some(ctx)
    } else {
        eprintln!("running {} standalone experiment(s) (no ecosystem needed)...", ids.len());
        None
    };

    let mut results = Vec::new();
    let mut failures = 0usize;
    for id in &ids {
        let result = match &ctx {
            Some(ctx) => run(id, ctx),
            None => run_standalone(id, master_seed),
        }
        .expect("id validated above");
        println!("{result}");
        failures += result.failures().len();
        results.push(result);
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&results).expect("results serialize");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write --json output to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = metrics_path {
        let snapshot = vmp_obs::snapshot();
        if let Err(e) = std::fs::write(&path, snapshot.to_json_pretty()) {
            eprintln!("cannot write --metrics output to {path}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "wrote {path} ({} counters, {} histograms, {} events)",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            snapshot.events.len()
        );
    }

    if let Some(path) = trace_path {
        let json = vmp_obs::chrome_trace_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write --trace output to {path}: {e}");
            std::process::exit(2);
        }
        let dropped = vmp_obs::trace_dropped();
        eprintln!(
            "wrote {path} ({} trace events{})",
            vmp_obs::trace_events().len(),
            if dropped > 0 { format!(", {dropped} dropped at capacity") } else { String::new() }
        );
    }

    let total_checks: usize = results.iter().map(|r| r.checks.len()).sum();
    eprintln!(
        "\n{} experiments, {}/{} checks passed ({:.1}s total)",
        results.len(),
        total_checks - failures,
        total_checks,
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

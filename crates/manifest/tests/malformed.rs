//! Malformed-input battery: every parser must return a typed
//! [`ManifestError`] (or `XmlError`) on hostile input — never panic, never
//! exhaust stack or memory. Failure triaging (§5 of the paper) counts
//! manifest errors as a first-class failure mode, so the parse paths are
//! exactly where untrusted bytes enter the pipeline.

use vmp_manifest::types::ManifestError;
use vmp_manifest::{dash, hls, mss, xml};

/// Inputs that must produce an error from every line-oriented HLS entry
/// point without panicking.
const HLS_GARBAGE: &[&str] = &[
    "",
    "#EXTM3U",
    "not a playlist",
    "#EXTM3U\n#EXT-X-VERSION:banana",
    "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=notanumber\nchunk.m3u8",
    "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=\u{0000}\nchunk.m3u8",
    "#EXTM3U\nvariant.m3u8",
    "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=800000",
    "#EXTM3U\n#EXT-X-STREAM-INF:RESOLUTION=640x360\nchunk.m3u8",
];

#[test]
fn hls_master_rejects_garbage_without_panicking() {
    for input in HLS_GARBAGE {
        assert!(
            hls::parse_master(input).is_err(),
            "parse_master accepted malformed input: {input:?}"
        );
    }
}

#[test]
fn hls_media_rejects_garbage_without_panicking() {
    for input in [
        "",
        "random text",
        "#EXTM3U\n#EXT-X-TARGETDURATION:NaNopes",
        "#EXTM3U\n#EXTINF:-4.0,\nseg0.ts\n#EXT-X-TARGETDURATION:4",
        "#EXTM3U\nseg0.ts",
        "#EXTM3U\n#EXTINF:4.0,\nseg0.ts", // missing TARGETDURATION
    ] {
        assert!(
            hls::parse_media(input).is_err(),
            "parse_media accepted malformed input: {input:?}"
        );
    }
}

#[test]
fn hls_master_caps_variant_count() {
    let mut doc = String::from("#EXTM3U\n");
    for i in 0..1_000 {
        doc.push_str(&format!("#EXT-X-STREAM-INF:BANDWIDTH={}\nv{i}.m3u8\n", 100_000 + i));
    }
    match hls::parse_master(&doc) {
        Err(ManifestError::Limit { format: "HLS", what: "variants", .. }) => {}
        other => panic!("expected variant limit error, got {other:?}"),
    }
}

#[test]
fn hls_media_caps_segment_count() {
    let mut doc = String::from("#EXTM3U\n#EXT-X-TARGETDURATION:4\n");
    for i in 0..150_000 {
        doc.push_str(&format!("#EXTINF:4.0,\ns{i}.ts\n"));
    }
    match hls::parse_media(&doc) {
        Err(ManifestError::Limit { format: "HLS", what: "segments", .. }) => {}
        other => panic!("expected segment limit error, got {other:?}"),
    }
}

#[test]
fn xml_rejects_deep_nesting_instead_of_overflowing() {
    // 10k nested elements would overflow the recursive-descent parser's
    // stack without the depth cap.
    let mut doc = String::new();
    for _ in 0..10_000 {
        doc.push_str("<a>");
    }
    for _ in 0..10_000 {
        doc.push_str("</a>");
    }
    let err = xml::parse(&doc).expect_err("deep nesting must be rejected");
    assert!(err.message.contains("nesting"), "unexpected error: {err}");
}

#[test]
fn xml_accepts_reasonable_nesting() {
    let mut doc = String::new();
    for _ in 0..30 {
        doc.push_str("<a>");
    }
    for _ in 0..30 {
        doc.push_str("</a>");
    }
    assert!(xml::parse(&doc).is_ok());
}

#[test]
fn xml_rejects_structural_garbage() {
    for input in [
        "",
        "<",
        "<a",
        "<a><b></a></b>",
        "<a attr=unquoted></a>",
        "<a>&bogus;</a>",
        "<a></a><b></b>",
        "<a>\u{0000}</a><",
    ] {
        assert!(xml::parse(input).is_err(), "xml accepted malformed input: {input:?}");
    }
}

#[test]
fn dash_rejects_garbage_without_panicking() {
    for input in [
        "",
        "<NotMPD></NotMPD>",
        "<MPD></MPD>", // no Period
        "<MPD mediaPresentationDuration=\"broken\"><Period/></MPD>",
        "<MPD mediaPresentationDuration=\"PT1H2X\"><Period/></MPD>",
        "<MPD><Period><AdaptationSet mimeType=\"video/mp4\">\
         <SegmentTemplate timescale=\"0\" duration=\"4\"/>\
         </AdaptationSet></Period></MPD>",
        "<MPD><Period><AdaptationSet mimeType=\"video/mp4\">\
         <SegmentTemplate timescale=\"1\" duration=\"4\"/>\
         <Representation width=\"640\"/>\
         </AdaptationSet></Period></MPD>", // Representation without bandwidth
    ] {
        assert!(dash::parse_mpd(input).is_err(), "dash accepted malformed input: {input:?}");
    }
}

#[test]
fn dash_caps_representation_count() {
    let mut doc = String::from(
        "<MPD><Period><AdaptationSet mimeType=\"video/mp4\">\
         <SegmentTemplate timescale=\"1\" duration=\"4\" media=\"v/chunk-$Number$.m4s\"/>",
    );
    for i in 0..1_000 {
        doc.push_str(&format!("<Representation bandwidth=\"{}\"/>", 100_000 + i));
    }
    doc.push_str("</AdaptationSet></Period></MPD>");
    match dash::parse_mpd(&doc) {
        Err(ManifestError::Limit { format: "MPD", what: "representations", .. }) => {}
        other => panic!("expected representation limit error, got {other:?}"),
    }
}

#[test]
fn mss_rejects_garbage_without_panicking() {
    for input in [
        "",
        "<Wrong/>",
        "<SmoothStreamingMedia><StreamIndex Type=\"video\">\
         <QualityLevel MaxWidth=\"640\"/>\
         </StreamIndex></SmoothStreamingMedia>", // QualityLevel without Bitrate
    ] {
        assert!(
            mss::parse_manifest(input, "https://cdn.example.net/x.ism").is_err(),
            "mss accepted malformed input: {input:?}"
        );
    }
}

#[test]
fn mss_caps_quality_level_count() {
    let mut doc = String::from(
        "<SmoothStreamingMedia Duration=\"40000000\">\
         <StreamIndex Type=\"video\" Name=\"v\" ChunkDuration=\"40000000\">",
    );
    for i in 0..1_000 {
        doc.push_str(&format!("<QualityLevel Bitrate=\"{}\"/>", 100_000 + i));
    }
    doc.push_str("</StreamIndex></SmoothStreamingMedia>");
    match mss::parse_manifest(&doc, "https://cdn.example.net/x.ism") {
        Err(ManifestError::Limit { format: "MSS", what: "quality levels", .. }) => {}
        other => panic!("expected quality-level limit error, got {other:?}"),
    }
}

#[test]
fn limit_error_display_is_informative() {
    let e = ManifestError::Limit { format: "HLS", what: "variants", limit: 512 };
    assert_eq!(e.to_string(), "HLS input exceeds variants limit of 512");
}

//! Property tests: every manifest writer/parser pair must round-trip for
//! arbitrary valid presentations, and the URL classifier must agree with the
//! generating protocol for arbitrary tokens.

use proptest::prelude::*;
use vmp_core::ladder::BitrateLadder;
use vmp_core::protocol::StreamingProtocol;
use vmp_core::units::{Kbps, Seconds};
use vmp_manifest::types::PresentationBuilder;
use vmp_manifest::{classify, dash, hds, hls, manifest_url, mss, MediaPresentation};

/// Strategy: a valid ascending ladder of 1..=14 distinct bitrates in
/// 100..=20_000 kbps (Fig 17's observed range is 3..=14 rungs).
fn ladder_strategy() -> impl Strategy<Value = BitrateLadder> {
    proptest::collection::btree_set(100u32..=20_000, 1..=14)
        .prop_map(|set| BitrateLadder::from_bitrates(&set.into_iter().collect::<Vec<_>>()).unwrap())
}

fn presentation_strategy() -> impl Strategy<Value = MediaPresentation> {
    (
        ladder_strategy(),
        proptest::collection::btree_set(32u32..=320, 1..=3),
        2u32..=10,        // chunk duration seconds
        60u32..=14_400,   // total duration seconds
        "[a-z0-9]{4,12}", // content token
        proptest::bool::ANY,
    )
        .prop_map(|(ladder, audio, chunk, total, token, live)| {
            let mut b = PresentationBuilder::new(token, ladder)
                .audio(audio.into_iter().map(Kbps).collect())
                .chunk_duration(Seconds(chunk as f64))
                .base_url("https://edge.cdn-a.example.net/p1");
            if !live {
                b = b.vod(Seconds(total as f64));
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hls_master_round_trip(p in presentation_strategy()) {
        let top_audio = p.audio_bitrates.iter().copied().max().unwrap();
        let master = hls::parse_master(&hls::write_master(&p)).unwrap();
        let bitrates: Vec<Kbps> =
            master.variants.iter().map(|v| v.video_bitrate(top_audio)).collect();
        prop_assert_eq!(bitrates, p.ladder.bitrates());
        let audio: Vec<Kbps> = master.audio.iter().filter_map(|a| a.bitrate()).collect();
        let mut expected = p.audio_bitrates.clone();
        expected.sort();
        prop_assert_eq!(audio, expected);
    }

    #[test]
    fn hls_media_round_trip(p in presentation_strategy()) {
        let rung = p.ladder.rungs()[0];
        let media = hls::parse_media(&hls::write_media(&p, &rung)).unwrap();
        match p.total_duration {
            Some(total) => {
                prop_assert!(media.ended);
                prop_assert!((media.total_duration().0 - total.0).abs() < 1e-3);
                // Every segment respects the target duration.
                for seg in &media.segments {
                    prop_assert!(seg.duration.0 <= media.target_duration as f64 + 1e-9);
                }
            }
            None => prop_assert!(!media.ended),
        }
    }

    #[test]
    fn dash_round_trip(p in presentation_strategy()) {
        let back = dash::parse_mpd(&dash::write_mpd(&p)).unwrap();
        prop_assert_eq!(back.ladder.bitrates(), p.ladder.bitrates());
        let mut expected_audio = p.audio_bitrates.clone();
        expected_audio.sort();
        let mut got_audio = back.audio_bitrates.clone();
        got_audio.sort();
        prop_assert_eq!(got_audio, expected_audio);
        prop_assert!((back.chunk_duration.0 - p.chunk_duration.0).abs() < 1e-6);
        prop_assert_eq!(back.is_live(), p.is_live());
        if let (Some(a), Some(b)) = (back.total_duration, p.total_duration) {
            prop_assert!((a.0 - b.0).abs() < 1e-2);
        }
    }

    #[test]
    fn mss_round_trip(p in presentation_strategy()) {
        let back = mss::parse_manifest(&mss::write_manifest(&p), &p.base_url).unwrap();
        prop_assert_eq!(back.ladder.bitrates(), p.ladder.bitrates());
        prop_assert!((back.chunk_duration.0 - p.chunk_duration.0).abs() < 1e-6);
        prop_assert_eq!(back.is_live(), p.is_live());
    }

    #[test]
    fn hds_round_trip(p in presentation_strategy()) {
        let back = hds::parse_f4m(&hds::write_f4m(&p)).unwrap();
        prop_assert_eq!(back.ladder.bitrates(), p.ladder.bitrates());
        prop_assert!((back.chunk_duration.0 - p.chunk_duration.0).abs() < 1e-6);
        prop_assert_eq!(back.is_live(), p.is_live());
    }

    #[test]
    fn classifier_agrees_with_generator(
        proto_idx in 0usize..6,
        host in "[a-z]{3,10}\\.example\\.net",
        prefix in "p[0-9]{1,4}",
        token in "[a-z0-9]{4,12}",
    ) {
        let proto = StreamingProtocol::ALL[proto_idx];
        let url = manifest_url(proto, &host, &prefix, &token);
        prop_assert_eq!(classify(&url), Some(proto));
    }

    #[test]
    fn classifier_never_panics(url in "\\PC*") {
        let _ = classify(&url);
    }
}

//! Table 1: protocol inference from manifest URLs.
//!
//! §3: "Different streaming protocols use pre-defined file extension types
//! for their manifest files" — `.m3u8`/`.m3u` for HLS, `.mpd` for DASH,
//! `.ism`/`.isml` for SmoothStreaming, `.f4m` for HDS. Footnote 5 adds the
//! two exceptions: RTMP is detected from the URL scheme, and progressive
//! downloading uses media-container extensions (`.mp4`, `.flv`, ...).
//!
//! One subtlety straight from Table 1's sample URLs: SmoothStreaming
//! manifests look like `http://host/56.ism/manifest` — the protocol
//! extension is on an *interior* path segment, so classification scans every
//! segment, not just the last.

use vmp_core::protocol::StreamingProtocol;

/// Classifies a manifest/stream URL into a streaming protocol, or `None`
/// when nothing matches (e.g. an API endpoint).
///
/// ```
/// use vmp_core::protocol::StreamingProtocol;
/// use vmp_manifest::classify;
///
/// assert_eq!(classify("https://cdn/x/master.m3u8"), Some(StreamingProtocol::Hls));
/// assert_eq!(classify("http://cdn/56.ism/manifest"), Some(StreamingProtocol::SmoothStreaming));
/// assert_eq!(classify("rtmp://cdn/live/stream"), Some(StreamingProtocol::Rtmp));
/// assert_eq!(classify("https://api.example.net/v1/views"), None);
/// ```
pub fn classify(url: &str) -> Option<StreamingProtocol> {
    let trimmed = url.trim();
    if trimmed.is_empty() {
        return None;
    }
    // Rule 1 (footnote 5): the RTMP family is identified by scheme.
    let lower = trimmed.to_ascii_lowercase();
    for scheme in ["rtmp://", "rtmps://", "rtmpe://", "rtmpt://"] {
        if lower.starts_with(scheme) {
            return Some(StreamingProtocol::Rtmp);
        }
    }
    // Strip scheme, query and fragment; keep only the path.
    let without_scheme = match lower.find("://") {
        Some(i) => &lower[i + 3..],
        None => lower.as_str(),
    };
    let path_end = without_scheme
        .find(['?', '#'])
        .unwrap_or(without_scheme.len());
    let path = &without_scheme[..path_end];

    // Rule 2: scan path segments (skipping the host) for a manifest
    // extension. Interior segments matter for MSS (`/x.ism/manifest`).
    let mut segments = path.split('/');
    let _host = segments.next();
    let mut progressive_hit = false;
    for segment in segments {
        if let Some(ext) = extension_of(segment) {
            for proto in StreamingProtocol::ALL {
                if proto.manifest_extensions().contains(&ext) {
                    if proto == StreamingProtocol::Progressive {
                        // Keep scanning: a later segment may carry a real
                        // manifest extension (rare, but be precise).
                        progressive_hit = true;
                    } else {
                        return Some(proto);
                    }
                }
            }
        }
    }
    if progressive_hit {
        return Some(StreamingProtocol::Progressive);
    }
    None
}

/// The extension of one path segment, if any (`"master.m3u8"` → `"m3u8"`).
fn extension_of(segment: &str) -> Option<&str> {
    let dot = segment.rfind('.')?;
    let ext = &segment[dot + 1..];
    if ext.is_empty() || dot == 0 {
        None
    } else {
        Some(ext)
    }
}

/// Builds the manifest URL that the packager publishes for a presentation
/// on a given CDN host. Mirrors the URL shapes of Table 1.
pub fn manifest_url(
    protocol: StreamingProtocol,
    cdn_host: &str,
    publisher_prefix: &str,
    content_token: &str,
) -> String {
    match protocol {
        StreamingProtocol::Hls => {
            format!("https://{cdn_host}/{publisher_prefix}/{content_token}/master.m3u8")
        }
        StreamingProtocol::Dash => {
            format!("https://{cdn_host}/{publisher_prefix}/{content_token}.mpd")
        }
        StreamingProtocol::SmoothStreaming => {
            format!("https://{cdn_host}/{publisher_prefix}/{content_token}.ism/manifest")
        }
        StreamingProtocol::Hds => {
            format!("https://{cdn_host}/{publisher_prefix}/cache/{content_token}.f4m")
        }
        StreamingProtocol::Rtmp => {
            format!("rtmp://{cdn_host}/live/{publisher_prefix}/{content_token}")
        }
        StreamingProtocol::Progressive => {
            format!("https://{cdn_host}/{publisher_prefix}/{content_token}.mp4")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_sample_urls() {
        // The paper's own sample URLs (hosts altered).
        assert_eq!(
            classify("http://x.akamaihd.example.net/master.m3u8"),
            Some(StreamingProtocol::Hls)
        );
        assert_eq!(
            classify("http://x.llwnd.example.net//Z53TiGRzq.mpd"),
            Some(StreamingProtocol::Dash)
        );
        assert_eq!(
            classify("http://x.level3.example.net/56.ism/manifest"),
            Some(StreamingProtocol::SmoothStreaming)
        );
        assert_eq!(
            classify("http://x.aws.example.com/cache/hds.f4m"),
            Some(StreamingProtocol::Hds)
        );
    }

    #[test]
    fn footnote_5_exceptions() {
        assert_eq!(
            classify("rtmp://live.example.net/app/stream"),
            Some(StreamingProtocol::Rtmp)
        );
        assert_eq!(
            classify("rtmps://live.example.net/app/stream"),
            Some(StreamingProtocol::Rtmp)
        );
        assert_eq!(
            classify("https://cdn.example.net/videos/movie.mp4"),
            Some(StreamingProtocol::Progressive)
        );
        assert_eq!(
            classify("http://cdn.example.net/old/clip.flv"),
            Some(StreamingProtocol::Progressive)
        );
    }

    #[test]
    fn all_other_extension_variants() {
        assert_eq!(classify("https://h/a/playlist.m3u"), Some(StreamingProtocol::Hls));
        assert_eq!(
            classify("https://h/a/live.isml/manifest"),
            Some(StreamingProtocol::SmoothStreaming)
        );
    }

    #[test]
    fn query_strings_and_fragments_are_ignored() {
        assert_eq!(
            classify("https://h/p/master.m3u8?token=abc.mpd"),
            Some(StreamingProtocol::Hls)
        );
        assert_eq!(
            classify("https://h/p/video.mpd#t=30"),
            Some(StreamingProtocol::Dash)
        );
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(classify("HTTPS://H/P/MASTER.M3U8"), Some(StreamingProtocol::Hls));
        assert_eq!(classify("RTMP://h/a/s"), Some(StreamingProtocol::Rtmp));
    }

    #[test]
    fn manifest_extension_beats_progressive_segment() {
        // A path that embeds an .mp4 directory name but ends at a real
        // manifest must classify as the manifest protocol.
        assert_eq!(
            classify("https://h/p/movie.mp4/master.m3u8"),
            Some(StreamingProtocol::Hls)
        );
    }

    #[test]
    fn unclassifiable_urls() {
        assert_eq!(classify(""), None);
        assert_eq!(classify("https://api.example.net/v1/views"), None);
        assert_eq!(classify("https://h/p/file.unknownext"), None);
        assert_eq!(classify("https://h/p/.hidden"), None);
        assert_eq!(classify("not a url at all"), None);
    }

    #[test]
    fn host_extension_does_not_confuse_classifier() {
        // Hosts contain dots; ".net" etc. must not classify.
        assert_eq!(classify("https://cdn.example.net/"), None);
        assert_eq!(classify("https://cdn.m3u8.example.net/api"), None);
    }

    #[test]
    fn generated_urls_round_trip_through_classifier() {
        for proto in StreamingProtocol::ALL {
            let url = manifest_url(proto, "edge.cdn-a.example.net", "p0042", "v9f3c");
            assert_eq!(classify(&url), Some(proto), "url {url}");
        }
    }
}

//! Microsoft SmoothStreaming client manifests.
//!
//! A SmoothStreaming presentation is addressed as `.../name.ism/manifest`
//! (see Table 1) and described by a `<SmoothStreamingMedia>` document with
//! one `<StreamIndex>` per media type and one `<QualityLevel>` per encoding.
//! Durations are expressed in 100-nanosecond ticks (`TimeScale` defaults to
//! 10,000,000).

use crate::types::{ManifestError, MediaPresentation, PresentationBuilder};
use crate::xml::{parse as parse_xml, Element};
use vmp_core::ladder::{BitrateLadder, LadderRung, Resolution};
use vmp_core::protocol::Codec;
use vmp_core::units::{Kbps, Seconds};

/// Default SmoothStreaming timescale: 100-ns ticks.
const TICKS_PER_SECOND: f64 = 10_000_000.0;

/// Cap on `<QualityLevel>` entries per video stream; beyond this the input
/// is malformed and the parser errors instead of allocating per element.
const MAX_QUALITY_LEVELS: usize = 512;

/// Renders the client manifest for a presentation.
pub fn write_manifest(p: &MediaPresentation) -> String {
    let mut root = Element::new("SmoothStreamingMedia")
        .attr("MajorVersion", "2")
        .attr("MinorVersion", "2")
        .attr("TimeScale", "10000000");
    match p.total_duration {
        Some(total) => {
            root = root.attr("Duration", ((total.0 * TICKS_PER_SECOND) as u64).to_string());
        }
        None => {
            root = root.attr("Duration", "0").attr("IsLive", "TRUE");
        }
    }

    let chunk_ticks = (p.chunk_duration.0 * TICKS_PER_SECOND) as u64;
    let mut video = Element::new("StreamIndex")
        .attr("Type", "video")
        .attr("Name", p.content_token.clone())
        .attr("Chunks", p.chunk_count().unwrap_or(0).to_string())
        .attr("TimeScale", "10000000")
        .attr(
            "Url",
            format!("QualityLevels({{bitrate}})/Fragments({},time={{start time}})", p.content_token),
        )
        .attr("ChunkDuration", chunk_ticks.to_string());
    for (i, rung) in p.ladder.rungs().iter().enumerate() {
        video = video.child(
            Element::new("QualityLevel")
                .attr("Index", i.to_string())
                .attr("Bitrate", (rung.bitrate.0 as u64 * 1000).to_string())
                .attr("MaxWidth", rung.resolution.width.to_string())
                .attr("MaxHeight", rung.resolution.height.to_string())
                .attr("FourCC", fourcc(rung.codec)),
        );
    }

    let mut audio = Element::new("StreamIndex")
        .attr("Type", "audio")
        .attr("Name", "audio")
        .attr("TimeScale", "10000000");
    for (i, a) in p.audio_bitrates.iter().enumerate() {
        audio = audio.child(
            Element::new("QualityLevel")
                .attr("Index", i.to_string())
                .attr("Bitrate", (a.0 as u64 * 1000).to_string())
                .attr("FourCC", "AACL"),
        );
    }

    root.child(video).child(audio).to_document()
}

/// Parses a client manifest back into a [`MediaPresentation`].
///
/// The base URL is not part of a SmoothStreaming manifest (clients derive it
/// from the manifest URL), so the caller supplies it.
pub fn parse_manifest(input: &str, base_url: &str) -> Result<MediaPresentation, ManifestError> {
    let root =
        parse_xml(input).map_err(|e| ManifestError::parse("MSS", 0, e.to_string()))?;
    if root.name != "SmoothStreamingMedia" {
        return Err(ManifestError::parse("MSS", 0, format!("root is <{}>", root.name)));
    }
    let is_live = root
        .get_attr("IsLive")
        .map(|v| v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let duration_ticks: f64 = root.parse_attr("Duration").unwrap_or(0.0);

    let mut rungs = Vec::new();
    let mut audio_bitrates = Vec::new();
    let mut chunk_duration = None;
    let mut content_token = String::new();

    for stream in root.find_all("StreamIndex") {
        match stream.get_attr("Type") {
            Some("video") => {
                content_token = stream.get_attr("Name").unwrap_or_default().to_string();
                if let Some(ticks) = stream.parse_attr::<f64>("ChunkDuration") {
                    chunk_duration = Some(Seconds(ticks / TICKS_PER_SECOND));
                }
                for level in stream.find_all("QualityLevel") {
                    let bitrate: u64 = level.parse_attr("Bitrate").ok_or_else(|| {
                        ManifestError::parse("MSS", 0, "QualityLevel without Bitrate")
                    })?;
                    let width: u32 = level.parse_attr("MaxWidth").unwrap_or(0);
                    let height: u32 = level.parse_attr("MaxHeight").unwrap_or(0);
                    let codec = match level.get_attr("FourCC") {
                        Some("HVC1") => Codec::H265,
                        _ => Codec::H264,
                    };
                    if rungs.len() >= MAX_QUALITY_LEVELS {
                        return Err(ManifestError::limit(
                            "MSS",
                            "quality levels",
                            MAX_QUALITY_LEVELS,
                        ));
                    }
                    rungs.push(LadderRung {
                        bitrate: Kbps((bitrate / 1000) as u32),
                        resolution: Resolution { width, height },
                        codec,
                    });
                }
            }
            Some("audio") => {
                for level in stream.find_all("QualityLevel") {
                    if let Some(bitrate) = level.parse_attr::<u64>("Bitrate") {
                        audio_bitrates.push(Kbps((bitrate / 1000) as u32));
                    }
                }
            }
            _ => {}
        }
    }

    let ladder =
        BitrateLadder::new(rungs).map_err(|e| ManifestError::parse("MSS", 0, e.to_string()))?;
    let chunk_duration = chunk_duration
        .ok_or_else(|| ManifestError::parse("MSS", 0, "video StreamIndex without ChunkDuration"))?;

    let mut builder = PresentationBuilder::new(content_token, ladder)
        .audio(audio_bitrates)
        .chunk_duration(chunk_duration)
        .base_url(base_url);
    if !is_live {
        builder = builder.vod(Seconds(duration_ticks / TICKS_PER_SECOND));
    }
    builder.build()
}

/// SmoothStreaming FourCC for a codec.
fn fourcc(codec: Codec) -> &'static str {
    match codec {
        Codec::H264 => "H264",
        Codec::H265 => "HVC1",
        // MSS predates VP9; our packager never emits it (enforced by
        // `StreamingProtocol::supported_codecs`), map defensively.
        Codec::Vp9 => "H264",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn presentation() -> MediaPresentation {
        PresentationBuilder::new(
            "v56",
            BitrateLadder::from_bitrates(&[300, 600, 1200, 2400]).unwrap(),
        )
        .audio(vec![Kbps(128)])
        .chunk_duration(Seconds(2.0))
        .vod(Seconds(600.0))
        .base_url("https://cache.cdn-c.example.net/p7")
        .build()
        .unwrap()
    }

    #[test]
    fn manifest_round_trip() {
        let p = presentation();
        let text = write_manifest(&p);
        let back = parse_manifest(&text, &p.base_url).unwrap();
        assert_eq!(back.content_token, p.content_token);
        assert_eq!(back.ladder.bitrates(), p.ladder.bitrates());
        assert_eq!(back.audio_bitrates, p.audio_bitrates);
        assert!((back.chunk_duration.0 - 2.0).abs() < 1e-9);
        assert!((back.total_duration.unwrap().0 - 600.0).abs() < 1e-6);
    }

    #[test]
    fn live_manifest_round_trip() {
        let p = PresentationBuilder::new("ev1", BitrateLadder::from_bitrates(&[900]).unwrap())
            .chunk_duration(Seconds(2.0))
            .build()
            .unwrap();
        let text = write_manifest(&p);
        assert!(text.contains("IsLive=\"TRUE\""));
        let back = parse_manifest(&text, "https://h/p").unwrap();
        assert!(back.is_live());
    }

    #[test]
    fn chunk_count_is_advertised() {
        let p = presentation();
        let text = write_manifest(&p);
        // 600s / 2s = 300 chunks.
        assert!(text.contains("Chunks=\"300\""));
    }

    #[test]
    fn rejects_malformed_manifests() {
        assert!(parse_manifest("<Wrong/>", "b").is_err());
        assert!(parse_manifest("garbage", "b").is_err());
        let no_chunk_duration = "<SmoothStreamingMedia Duration=\"100\">\
             <StreamIndex Type=\"video\" Name=\"x\">\
             <QualityLevel Bitrate=\"1000000\"/></StreamIndex></SmoothStreamingMedia>";
        assert!(parse_manifest(no_chunk_duration, "b").is_err());
        let no_bitrate = "<SmoothStreamingMedia Duration=\"100\">\
             <StreamIndex Type=\"video\" Name=\"x\" ChunkDuration=\"20000000\">\
             <QualityLevel Index=\"0\"/></StreamIndex></SmoothStreamingMedia>";
        assert!(parse_manifest(no_bitrate, "b").is_err());
    }
}

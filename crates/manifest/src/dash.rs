//! MPEG-DASH Media Presentation Descriptions (ISO/IEC 23009-1 subset).
//!
//! The writer emits a static (VoD) or dynamic (live) MPD with one video
//! `AdaptationSet` (one `Representation` per ladder rung, `SegmentTemplate`
//! addressing) and one audio `AdaptationSet`. The parser recovers a
//! [`MediaPresentation`], making DASH the only format with a full
//! presentation-level round trip (DASH manifests carry chunk duration *and*
//! total duration, unlike HLS masters).

use crate::types::{ManifestError, MediaPresentation, PresentationBuilder};
use crate::xml::{parse as parse_xml, Element};
use vmp_core::ladder::{BitrateLadder, LadderRung, Resolution};
use vmp_core::protocol::Codec;
use vmp_core::units::{Kbps, Seconds};

/// Cap on video `Representation` entries; a ladder past this is malformed
/// input, not a plausible encoding decision.
const MAX_REPRESENTATIONS: usize = 512;

/// Renders the MPD document for a presentation.
pub fn write_mpd(p: &MediaPresentation) -> String {
    let mut mpd = Element::new("MPD")
        .attr("xmlns", "urn:mpeg:dash:schema:mpd:2011")
        .attr("profiles", "urn:mpeg:dash:profile:isoff-live:2011")
        .attr(
            "type",
            if p.is_live() { "dynamic" } else { "static" },
        )
        .attr("minBufferTime", "PT2S");
    if let Some(total) = p.total_duration {
        mpd = mpd.attr("mediaPresentationDuration", iso8601_duration(total));
    }

    let timescale = 1000u64;
    let seg_duration_ticks = (p.chunk_duration.0 * timescale as f64).round() as u64;

    let mut video_set = Element::new("AdaptationSet")
        .attr("mimeType", "video/mp4")
        .attr("segmentAlignment", "true");
    video_set = video_set.child(
        Element::new("SegmentTemplate")
            .attr("timescale", timescale.to_string())
            .attr("duration", seg_duration_ticks.to_string())
            .attr("media", format!("{}/v$Bandwidth$/seg-$Number$.m4s", p.content_token))
            .attr("initialization", format!("{}/v$Bandwidth$/init.mp4", p.content_token))
            .attr("startNumber", "0"),
    );
    for rung in p.ladder.rungs() {
        video_set = video_set.child(
            Element::new("Representation")
                .attr("id", format!("v{}", rung.bitrate.0))
                .attr("bandwidth", (rung.bitrate.0 as u64 * 1000).to_string())
                .attr("width", rung.resolution.width.to_string())
                .attr("height", rung.resolution.height.to_string())
                .attr("codecs", rung.codec.rfc6381()),
        );
    }

    let mut audio_set = Element::new("AdaptationSet")
        .attr("mimeType", "audio/mp4")
        .attr("segmentAlignment", "true");
    for a in &p.audio_bitrates {
        audio_set = audio_set.child(
            Element::new("Representation")
                .attr("id", format!("a{}", a.0))
                .attr("bandwidth", (a.0 as u64 * 1000).to_string())
                .attr("codecs", "mp4a.40.2"),
        );
    }

    let period = Element::new("Period")
        .attr("id", "0")
        .child(
            Element::new("BaseURL").with_text(format!("{}/", p.base_url)),
        )
        .child(video_set)
        .child(audio_set);

    mpd.child(period).to_document()
}

/// Parses an MPD document back into a [`MediaPresentation`].
pub fn parse_mpd(input: &str) -> Result<MediaPresentation, ManifestError> {
    let root = parse_xml(input)
        .map_err(|e| ManifestError::parse("MPD", 0, e.to_string()))?;
    if root.name != "MPD" {
        return Err(ManifestError::parse("MPD", 0, format!("root is <{}>", root.name)));
    }
    let total_duration = match root.get_attr("mediaPresentationDuration") {
        Some(text) => Some(parse_iso8601_duration(text)?),
        None => None,
    };
    let period = root
        .find("Period")
        .ok_or_else(|| ManifestError::parse("MPD", 0, "missing <Period>"))?;
    let base_url = period
        .find("BaseURL")
        .map(|e| e.text.trim_end_matches('/').to_string())
        .unwrap_or_default();

    let mut rungs = Vec::new();
    let mut audio_bitrates = Vec::new();
    let mut chunk_duration = None;
    let mut content_token = String::new();

    for set in period.find_all("AdaptationSet") {
        let mime = set.get_attr("mimeType").unwrap_or_default();
        if mime.starts_with("video") {
            if let Some(template) = set.find("SegmentTemplate") {
                let timescale: f64 = template.parse_attr("timescale").unwrap_or(1.0);
                let duration: f64 = template
                    .parse_attr("duration")
                    .ok_or_else(|| ManifestError::parse("MPD", 0, "SegmentTemplate without duration"))?;
                if timescale <= 0.0 {
                    return Err(ManifestError::parse("MPD", 0, "non-positive timescale"));
                }
                chunk_duration = Some(Seconds(duration / timescale));
                if let Some(media) = template.get_attr("media") {
                    if let Some(slash) = media.find('/') {
                        content_token = media[..slash].to_string();
                    }
                }
            }
            for rep in set.find_all("Representation") {
                let bandwidth: u64 = rep.parse_attr("bandwidth").ok_or_else(|| {
                    ManifestError::parse("MPD", 0, "Representation without bandwidth")
                })?;
                let width: u32 = rep.parse_attr("width").unwrap_or(0);
                let height: u32 = rep.parse_attr("height").unwrap_or(0);
                let codec = match rep.get_attr("codecs") {
                    Some(c) if c.starts_with("avc1") => Codec::H264,
                    Some(c) if c.starts_with("hvc1") || c.starts_with("hev1") => Codec::H265,
                    Some(c) if c.starts_with("vp09") => Codec::Vp9,
                    _ => Codec::H264,
                };
                if rungs.len() >= MAX_REPRESENTATIONS {
                    return Err(ManifestError::limit("MPD", "representations", MAX_REPRESENTATIONS));
                }
                rungs.push(LadderRung {
                    bitrate: Kbps((bandwidth / 1000) as u32),
                    resolution: Resolution { width, height },
                    codec,
                });
            }
        } else if mime.starts_with("audio") {
            for rep in set.find_all("Representation") {
                if let Some(bandwidth) = rep.parse_attr::<u64>("bandwidth") {
                    audio_bitrates.push(Kbps((bandwidth / 1000) as u32));
                }
            }
        }
    }

    let ladder = BitrateLadder::new(rungs)
        .map_err(|e| ManifestError::parse("MPD", 0, e.to_string()))?;
    let chunk_duration =
        chunk_duration.ok_or_else(|| ManifestError::parse("MPD", 0, "no video SegmentTemplate"))?;

    let mut builder = PresentationBuilder::new(content_token, ladder)
        .audio(audio_bitrates)
        .chunk_duration(chunk_duration)
        .base_url(base_url);
    if let Some(total) = total_duration {
        builder = builder.vod(total);
    }
    builder.build()
}

/// Formats a duration as ISO-8601 (`PT1H2M3.500S`).
fn iso8601_duration(d: Seconds) -> String {
    let total = d.0.max(0.0);
    let hours = (total / 3600.0).floor() as u64;
    let minutes = ((total - hours as f64 * 3600.0) / 60.0).floor() as u64;
    let seconds = total - hours as f64 * 3600.0 - minutes as f64 * 60.0;
    let mut out = String::from("PT");
    if hours > 0 {
        out.push_str(&format!("{hours}H"));
    }
    if minutes > 0 {
        out.push_str(&format!("{minutes}M"));
    }
    out.push_str(&format!("{seconds:.3}S"));
    out
}

/// Parses an ISO-8601 duration of the `PT..H..M..S` form.
fn parse_iso8601_duration(text: &str) -> Result<Seconds, ManifestError> {
    let body = text
        .strip_prefix("PT")
        .ok_or_else(|| ManifestError::parse("MPD", 0, format!("bad duration {text}")))?;
    let mut total = 0.0f64;
    let mut number = String::new();
    for c in body.chars() {
        match c {
            '0'..='9' | '.' => number.push(c),
            'H' | 'M' | 'S' => {
                let value: f64 = number
                    .parse()
                    .map_err(|_| ManifestError::parse("MPD", 0, format!("bad duration {text}")))?;
                total += match c {
                    'H' => value * 3600.0,
                    'M' => value * 60.0,
                    _ => value,
                };
                number.clear();
            }
            other => {
                return Err(ManifestError::parse(
                    "MPD",
                    0,
                    format!("unexpected '{other}' in duration {text}"),
                ))
            }
        }
    }
    if !number.is_empty() {
        return Err(ManifestError::parse("MPD", 0, format!("bad duration {text}")));
    }
    Ok(Seconds(total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn presentation() -> MediaPresentation {
        PresentationBuilder::new(
            "v9f3c",
            BitrateLadder::from_bitrates(&[400, 800, 1600, 3200, 6500]).unwrap(),
        )
        .audio(vec![Kbps(96)])
        .chunk_duration(Seconds(4.0))
        .vod(Seconds(3723.5))
        .base_url("https://media.cdn-b.example.net/p0042")
        .build()
        .unwrap()
    }

    #[test]
    fn mpd_round_trip_is_lossless() {
        let p = presentation();
        let text = write_mpd(&p);
        let back = parse_mpd(&text).unwrap();
        assert_eq!(back.content_token, p.content_token);
        assert_eq!(back.ladder, p.ladder);
        assert_eq!(back.audio_bitrates, p.audio_bitrates);
        assert!((back.chunk_duration.0 - p.chunk_duration.0).abs() < 1e-9);
        assert!(
            (back.total_duration.unwrap().0 - p.total_duration.unwrap().0).abs() < 1e-3
        );
        assert_eq!(back.base_url, p.base_url);
    }

    #[test]
    fn live_mpd_is_dynamic() {
        let p = PresentationBuilder::new("live1", BitrateLadder::from_bitrates(&[1200]).unwrap())
            .chunk_duration(Seconds(2.0))
            .build()
            .unwrap();
        let text = write_mpd(&p);
        assert!(text.contains("type=\"dynamic\""));
        let back = parse_mpd(&text).unwrap();
        assert!(back.is_live());
    }

    #[test]
    fn iso_durations() {
        assert_eq!(iso8601_duration(Seconds(3723.5)), "PT1H2M3.500S");
        assert_eq!(iso8601_duration(Seconds(59.0)), "PT59.000S");
        assert!((parse_iso8601_duration("PT1H2M3.500S").unwrap().0 - 3723.5).abs() < 1e-9);
        assert!((parse_iso8601_duration("PT90S").unwrap().0 - 90.0).abs() < 1e-9);
        assert!((parse_iso8601_duration("PT2M").unwrap().0 - 120.0).abs() < 1e-9);
        assert!(parse_iso8601_duration("1H").is_err());
        assert!(parse_iso8601_duration("PT5X").is_err());
        assert!(parse_iso8601_duration("PT5").is_err());
    }

    #[test]
    fn codecs_round_trip() {
        let ladder = BitrateLadder::new(vec![
            LadderRung { bitrate: Kbps(1000), resolution: Resolution::for_bitrate(Kbps(1000)), codec: Codec::H264 },
            LadderRung { bitrate: Kbps(2000), resolution: Resolution::for_bitrate(Kbps(2000)), codec: Codec::Vp9 },
            LadderRung { bitrate: Kbps(4000), resolution: Resolution::for_bitrate(Kbps(4000)), codec: Codec::H265 },
        ])
        .unwrap();
        let p = PresentationBuilder::new("v1", ladder.clone())
            .vod(Seconds(60.0))
            .build()
            .unwrap();
        let back = parse_mpd(&write_mpd(&p)).unwrap();
        assert_eq!(back.ladder, ladder);
    }

    #[test]
    fn rejects_malformed_mpds() {
        assert!(parse_mpd("<NotMpd/>").is_err());
        assert!(parse_mpd("<MPD type=\"static\"/>").is_err()); // no Period
        assert!(parse_mpd("not xml").is_err());
        // Representation without bandwidth.
        let bad = "<MPD><Period><AdaptationSet mimeType=\"video/mp4\">\
                   <SegmentTemplate timescale=\"1000\" duration=\"4000\"/>\
                   <Representation id=\"x\"/></AdaptationSet></Period></MPD>";
        assert!(parse_mpd(bad).is_err());
    }
}

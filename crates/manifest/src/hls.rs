//! Apple HTTP Live Streaming playlists (RFC 8216 subset).
//!
//! The packager publishes a *master playlist* advertising one variant stream
//! per ladder rung plus audio renditions, and one *media playlist* per rung
//! listing the segments. Both directions (write and parse) are implemented
//! and round-trip tested; the parser is also exercised with malformed inputs
//! because failure triaging (§5) explicitly includes manifest errors.

use crate::types::{ManifestError, MediaPresentation};
use vmp_core::ladder::{LadderRung, Resolution};
use vmp_core::protocol::Codec;
use vmp_core::units::{Kbps, Seconds};

/// Cap on variant streams in a master playlist. Real ladders top out at a
/// couple dozen rungs; past this, the input is malformed or hostile and the
/// parser returns [`ManifestError::Limit`] instead of allocating per line.
const MAX_VARIANTS: usize = 512;

/// Cap on segments in a media playlist (a 4-second cadence for over four
/// days of continuous media).
const MAX_SEGMENTS: usize = 100_000;

/// A variant stream entry in a master playlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Peak bandwidth in bits/s (`BANDWIDTH`).
    pub bandwidth: u64,
    /// Frame size (`RESOLUTION`), if declared.
    pub resolution: Option<Resolution>,
    /// Codec string (`CODECS`), if declared.
    pub codecs: Option<String>,
    /// Media playlist URI.
    pub uri: String,
}

impl Variant {
    /// Video bitrate implied by the `BANDWIDTH` attribute (which in our
    /// packager is video bitrate plus the top audio rendition).
    pub fn video_bitrate(&self, audio: Kbps) -> Kbps {
        Kbps(((self.bandwidth / 1000) as u32).saturating_sub(audio.0))
    }

    /// Codec enum parsed from the `CODECS` string.
    pub fn codec(&self) -> Option<Codec> {
        let c = self.codecs.as_deref()?;
        if c.starts_with("avc1") {
            Some(Codec::H264)
        } else if c.starts_with("hvc1") || c.starts_with("hev1") {
            Some(Codec::H265)
        } else if c.starts_with("vp09") {
            Some(Codec::Vp9)
        } else {
            None
        }
    }
}

/// An audio rendition (`EXT-X-MEDIA:TYPE=AUDIO`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudioRendition {
    /// Rendition group id.
    pub group_id: String,
    /// Human name; our packager encodes the bitrate here (`audio-128`).
    pub name: String,
    /// Media playlist URI.
    pub uri: String,
}

impl AudioRendition {
    /// Bitrate recovered from the `audio-<kbps>` naming convention.
    pub fn bitrate(&self) -> Option<Kbps> {
        self.name.strip_prefix("audio-")?.parse().ok().map(Kbps)
    }
}

/// A parsed master playlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterPlaylist {
    /// `EXT-X-VERSION` value.
    pub version: u32,
    /// Variant streams in document order.
    pub variants: Vec<Variant>,
    /// Audio renditions.
    pub audio: Vec<AudioRendition>,
}

/// One media segment in a media playlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment duration.
    pub duration: Seconds,
    /// Segment URI.
    pub uri: String,
}

/// A parsed media playlist.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaPlaylist {
    /// `EXT-X-VERSION` value.
    pub version: u32,
    /// `EXT-X-TARGETDURATION` value (whole seconds).
    pub target_duration: u32,
    /// `EXT-X-PLAYLIST-TYPE` (VOD/EVENT), if present.
    pub playlist_type: Option<String>,
    /// `EXT-X-MEDIA-SEQUENCE` value: the media sequence number of the first
    /// segment listed. A live playlist advances this as old segments slide
    /// out of the window (RFC 8216 §4.3.3.2); VoD playlists keep it at 0.
    pub media_sequence: u64,
    /// Segments in order.
    pub segments: Vec<Segment>,
    /// Whether `EXT-X-ENDLIST` was present (VoD complete).
    pub ended: bool,
}

impl MediaPlaylist {
    /// Total media duration of all segments.
    pub fn total_duration(&self) -> Seconds {
        self.segments.iter().map(|s| s.duration).sum()
    }
}

/// Renders the master playlist for a presentation.
pub fn write_master(p: &MediaPresentation) -> String {
    let top_audio = p.audio_bitrates.iter().copied().max().unwrap_or(Kbps(0));
    let mut out = String::from("#EXTM3U\n#EXT-X-VERSION:6\n");
    out.push_str("#EXT-X-INDEPENDENT-SEGMENTS\n");
    for a in &p.audio_bitrates {
        out.push_str(&format!(
            "#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID=\"aud\",NAME=\"audio-{}\",DEFAULT=YES,URI=\"{}/audio-{}/playlist.m3u8\"\n",
            a.0, p.content_token, a.0
        ));
    }
    for rung in p.ladder.rungs() {
        let bandwidth = (rung.bitrate.0 as u64 + top_audio.0 as u64) * 1000;
        out.push_str(&format!(
            "#EXT-X-STREAM-INF:BANDWIDTH={},RESOLUTION={}x{},CODECS=\"{},mp4a.40.2\",AUDIO=\"aud\"\n",
            bandwidth, rung.resolution.width, rung.resolution.height, rung.codec.rfc6381()
        ));
        out.push_str(&format!("{}/v{}/playlist.m3u8\n", p.content_token, rung.bitrate.0));
    }
    out
}

/// Renders the media playlist for one rung of a presentation.
pub fn write_media(p: &MediaPresentation, rung: &LadderRung) -> String {
    let mut out = String::from("#EXTM3U\n#EXT-X-VERSION:6\n");
    let target = p.chunk_duration.0.ceil().max(1.0) as u32;
    out.push_str(&format!("#EXT-X-TARGETDURATION:{target}\n"));
    out.push_str("#EXT-X-MEDIA-SEQUENCE:0\n");
    match p.total_duration {
        Some(total) => {
            out.push_str("#EXT-X-PLAYLIST-TYPE:VOD\n");
            let full_chunks = (total.0 / p.chunk_duration.0).floor() as u64;
            let tail = total.0 - full_chunks as f64 * p.chunk_duration.0;
            for i in 0..full_chunks {
                out.push_str(&format!("#EXTINF:{:.3},\n", p.chunk_duration.0));
                out.push_str(&format!(
                    "{}/v{}/seg-{:05}.ts\n",
                    p.content_token, rung.bitrate.0, i
                ));
            }
            if tail > 1e-9 {
                out.push_str(&format!("#EXTINF:{tail:.3},\n"));
                out.push_str(&format!(
                    "{}/v{}/seg-{:05}.ts\n",
                    p.content_token, rung.bitrate.0, full_chunks
                ));
            }
            out.push_str("#EXT-X-ENDLIST\n");
        }
        None => {
            // Live window: advertise the last three chunks.
            for i in 0..3 {
                out.push_str(&format!("#EXTINF:{:.3},\n", p.chunk_duration.0));
                out.push_str(&format!(
                    "{}/v{}/live-{:05}.ts\n",
                    p.content_token, rung.bitrate.0, i
                ));
            }
        }
    }
    out
}

/// Renders a *sliding-window* live media playlist for one rung: the
/// `window` most recent segments, with `#EXT-X-MEDIA-SEQUENCE` advanced to
/// the sequence number of the oldest segment still advertised and no
/// `#EXT-X-ENDLIST` (the event is ongoing). Re-rendering one chunk
/// duration later yields the same playlist shifted by one segment with the
/// media sequence incremented — the refresh cadence a live player polls at.
pub fn write_live_media(
    p: &MediaPresentation,
    rung: &LadderRung,
    media_sequence: u64,
    window: usize,
) -> String {
    let mut out = String::from("#EXTM3U\n#EXT-X-VERSION:6\n");
    let target = p.chunk_duration.0.ceil().max(1.0) as u32;
    out.push_str(&format!("#EXT-X-TARGETDURATION:{target}\n"));
    out.push_str(&format!("#EXT-X-MEDIA-SEQUENCE:{media_sequence}\n"));
    for i in 0..window.max(1) as u64 {
        out.push_str(&format!("#EXTINF:{:.3},\n", p.chunk_duration.0));
        out.push_str(&format!(
            "{}/v{}/live-{:05}.ts\n",
            p.content_token,
            rung.bitrate.0,
            media_sequence + i
        ));
    }
    out
}

/// Parses a master playlist.
pub fn parse_master(input: &str) -> Result<MasterPlaylist, ManifestError> {
    let mut lines = input.lines().enumerate();
    match lines.next() {
        Some((_, "#EXTM3U")) => {}
        _ => return Err(ManifestError::parse("HLS", 1, "missing #EXTM3U header")),
    }
    let mut version = 1;
    let mut variants = Vec::new();
    let mut audio = Vec::new();
    let mut pending: Option<(u64, Option<Resolution>, Option<String>)> = None;
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(v) = line.strip_prefix("#EXT-X-VERSION:") {
            version = v
                .parse()
                .map_err(|_| ManifestError::parse("HLS", lineno, "bad version"))?;
        } else if let Some(attrs) = line.strip_prefix("#EXT-X-STREAM-INF:") {
            let attrs = parse_attributes(attrs, lineno)?;
            let bandwidth = attrs
                .iter()
                .find(|(k, _)| k == "BANDWIDTH")
                .and_then(|(_, v)| v.parse().ok())
                .ok_or_else(|| {
                    ManifestError::parse("HLS", lineno, "STREAM-INF missing BANDWIDTH")
                })?;
            let resolution = attrs.iter().find(|(k, _)| k == "RESOLUTION").and_then(|(_, v)| {
                let (w, h) = v.split_once('x')?;
                Some(Resolution { width: w.parse().ok()?, height: h.parse().ok()? })
            });
            let codecs = attrs
                .iter()
                .find(|(k, _)| k == "CODECS")
                .map(|(_, v)| v.clone());
            pending = Some((bandwidth, resolution, codecs));
        } else if let Some(attrs) = line.strip_prefix("#EXT-X-MEDIA:") {
            let attrs = parse_attributes(attrs, lineno)?;
            let is_audio = attrs.iter().any(|(k, v)| k == "TYPE" && v == "AUDIO");
            if is_audio {
                let get = |key: &str| {
                    attrs
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default()
                };
                audio.push(AudioRendition {
                    group_id: get("GROUP-ID"),
                    name: get("NAME"),
                    uri: get("URI"),
                });
            }
        } else if line.starts_with('#') {
            // Unknown tag: ignore (HLS parsers must skip unrecognized tags).
        } else {
            // A URI line closes a pending STREAM-INF.
            let (bandwidth, resolution, codecs) = pending.take().ok_or_else(|| {
                ManifestError::parse("HLS", lineno, "URI without preceding STREAM-INF")
            })?;
            if variants.len() >= MAX_VARIANTS {
                return Err(ManifestError::limit("HLS", "variants", MAX_VARIANTS));
            }
            variants.push(Variant { bandwidth, resolution, codecs, uri: line.to_string() });
        }
    }
    if pending.is_some() {
        return Err(ManifestError::parse("HLS", 0, "STREAM-INF without URI"));
    }
    if variants.is_empty() {
        return Err(ManifestError::parse("HLS", 0, "no variant streams"));
    }
    Ok(MasterPlaylist { version, variants, audio })
}

/// Parses a media playlist.
pub fn parse_media(input: &str) -> Result<MediaPlaylist, ManifestError> {
    let mut lines = input.lines().enumerate();
    match lines.next() {
        Some((_, "#EXTM3U")) => {}
        _ => return Err(ManifestError::parse("HLS", 1, "missing #EXTM3U header")),
    }
    let mut version = 1;
    let mut target_duration = None;
    let mut playlist_type = None;
    let mut media_sequence = 0u64;
    let mut segments = Vec::new();
    let mut ended = false;
    let mut pending: Option<Seconds> = None;
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(v) = line.strip_prefix("#EXT-X-VERSION:") {
            version = v
                .parse()
                .map_err(|_| ManifestError::parse("HLS", lineno, "bad version"))?;
        } else if let Some(v) = line.strip_prefix("#EXT-X-TARGETDURATION:") {
            target_duration = Some(
                v.parse()
                    .map_err(|_| ManifestError::parse("HLS", lineno, "bad target duration"))?,
            );
        } else if let Some(v) = line.strip_prefix("#EXT-X-PLAYLIST-TYPE:") {
            playlist_type = Some(v.to_string());
        } else if let Some(v) = line.strip_prefix("#EXT-X-MEDIA-SEQUENCE:") {
            media_sequence = v
                .parse()
                .map_err(|_| ManifestError::parse("HLS", lineno, "bad media sequence"))?;
        } else if let Some(v) = line.strip_prefix("#EXTINF:") {
            let duration_text = v.split(',').next().unwrap_or_default();
            let duration: f64 = duration_text
                .parse()
                .map_err(|_| ManifestError::parse("HLS", lineno, "bad EXTINF duration"))?;
            if duration < 0.0 {
                return Err(ManifestError::parse("HLS", lineno, "negative EXTINF duration"));
            }
            pending = Some(Seconds(duration));
        } else if line == "#EXT-X-ENDLIST" {
            ended = true;
        } else if line.starts_with('#') {
            // Ignore unknown tags.
        } else {
            let duration = pending.take().ok_or_else(|| {
                ManifestError::parse("HLS", lineno, "segment URI without EXTINF")
            })?;
            if segments.len() >= MAX_SEGMENTS {
                return Err(ManifestError::limit("HLS", "segments", MAX_SEGMENTS));
            }
            segments.push(Segment { duration, uri: line.to_string() });
        }
    }
    let target_duration = target_duration
        .ok_or_else(|| ManifestError::parse("HLS", 0, "missing EXT-X-TARGETDURATION"))?;
    Ok(MediaPlaylist { version, target_duration, playlist_type, media_sequence, segments, ended })
}

/// Parses an HLS attribute list: comma-separated KEY=VALUE pairs where
/// values may be quoted strings containing commas.
fn parse_attributes(
    input: &str,
    lineno: usize,
) -> Result<Vec<(String, String)>, ManifestError> {
    let mut out = Vec::new();
    let mut rest = input;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| ManifestError::parse("HLS", lineno, "attribute without '='"))?;
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        let value;
        if let Some(stripped) = rest.strip_prefix('"') {
            let close = stripped
                .find('"')
                .ok_or_else(|| ManifestError::parse("HLS", lineno, "unterminated quote"))?;
            value = stripped[..close].to_string();
            rest = &stripped[close + 1..];
            rest = rest.strip_prefix(',').unwrap_or(rest);
        } else {
            match rest.find(',') {
                Some(comma) => {
                    value = rest[..comma].to_string();
                    rest = &rest[comma + 1..];
                }
                None => {
                    value = rest.to_string();
                    rest = "";
                }
            }
        }
        if key.is_empty() {
            return Err(ManifestError::parse("HLS", lineno, "empty attribute key"));
        }
        out.push((key, value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PresentationBuilder;
    use vmp_core::ladder::BitrateLadder;

    fn presentation() -> MediaPresentation {
        PresentationBuilder::new(
            "v9f3c",
            BitrateLadder::from_bitrates(&[400, 800, 1600, 3200]).unwrap(),
        )
        .audio(vec![Kbps(64), Kbps(128)])
        .chunk_duration(Seconds(6.0))
        .vod(Seconds(120.0))
        .build()
        .unwrap()
    }

    #[test]
    fn master_round_trip_recovers_ladder() {
        let p = presentation();
        let text = write_master(&p);
        let master = parse_master(&text).unwrap();
        assert_eq!(master.variants.len(), 4);
        let recovered: Vec<Kbps> = master
            .variants
            .iter()
            .map(|v| v.video_bitrate(Kbps(128)))
            .collect();
        assert_eq!(recovered, p.ladder.bitrates());
        // Resolutions and codecs survive.
        for (v, rung) in master.variants.iter().zip(p.ladder.rungs()) {
            assert_eq!(v.resolution, Some(rung.resolution));
            assert_eq!(v.codec(), Some(rung.codec));
        }
        // Audio renditions recover their bitrates.
        let audio: Vec<Kbps> = master.audio.iter().filter_map(|a| a.bitrate()).collect();
        assert_eq!(audio, vec![Kbps(64), Kbps(128)]);
    }

    #[test]
    fn media_round_trip_preserves_duration() {
        let p = presentation();
        let rung = p.ladder.rungs()[1];
        let text = write_media(&p, &rung);
        let media = parse_media(&text).unwrap();
        assert_eq!(media.target_duration, 6);
        assert_eq!(media.playlist_type.as_deref(), Some("VOD"));
        assert!(media.ended);
        assert_eq!(media.segments.len(), 20);
        assert!((media.total_duration().0 - 120.0).abs() < 1e-6);
    }

    #[test]
    fn media_with_partial_tail_chunk() {
        let p = PresentationBuilder::new("v1", BitrateLadder::from_bitrates(&[800]).unwrap())
            .chunk_duration(Seconds(6.0))
            .vod(Seconds(62.0))
            .build()
            .unwrap();
        let text = write_media(&p, &p.ladder.rungs()[0]);
        let media = parse_media(&text).unwrap();
        assert_eq!(media.segments.len(), 11);
        assert!((media.segments.last().unwrap().duration.0 - 2.0).abs() < 1e-6);
        assert!((media.total_duration().0 - 62.0).abs() < 1e-6);
    }

    #[test]
    fn live_playlist_has_no_endlist() {
        let p = PresentationBuilder::new("v1", BitrateLadder::from_bitrates(&[800]).unwrap())
            .chunk_duration(Seconds(4.0))
            .build()
            .unwrap();
        let text = write_media(&p, &p.ladder.rungs()[0]);
        let media = parse_media(&text).unwrap();
        assert!(!media.ended);
        assert_eq!(media.segments.len(), 3);
    }

    #[test]
    fn live_window_slides_with_media_sequence_advance() {
        let p = PresentationBuilder::new("ev1", BitrateLadder::from_bitrates(&[800]).unwrap())
            .chunk_duration(Seconds(4.0))
            .build()
            .unwrap();
        let rung = p.ladder.rungs()[0];
        let now = parse_media(&write_live_media(&p, &rung, 120, 5)).unwrap();
        let next = parse_media(&write_live_media(&p, &rung, 121, 5)).unwrap();
        assert_eq!(now.media_sequence, 120);
        assert_eq!(next.media_sequence, 121);
        assert!(!now.ended && !next.ended, "live playlists never end");
        assert_eq!(now.segments.len(), 5);
        // The window slid by one: four URIs shared, oldest dropped, one new.
        assert_eq!(now.segments[1..], next.segments[..4]);
        assert_eq!(next.segments.last().unwrap().uri, "ev1/v800/live-00125.ts");
        // VoD playlists keep sequence 0.
        let vod = parse_media(&write_media(&presentation(), &presentation().ladder.rungs()[0])).unwrap();
        assert_eq!(vod.media_sequence, 0);
    }

    #[test]
    fn attribute_parser_handles_quoted_commas() {
        let attrs = parse_attributes(
            "BANDWIDTH=928000,CODECS=\"avc1.640028,mp4a.40.2\",RESOLUTION=640x360",
            1,
        )
        .unwrap();
        assert_eq!(attrs.len(), 3);
        assert_eq!(attrs[1].1, "avc1.640028,mp4a.40.2");
    }

    #[test]
    fn malformed_masters_are_rejected() {
        assert!(parse_master("").is_err());
        assert!(parse_master("#EXTM3U\nvariant.m3u8\n").is_err()); // URI w/o STREAM-INF
        assert!(parse_master("#EXTM3U\n#EXT-X-STREAM-INF:RESOLUTION=1x1\nu.m3u8\n").is_err()); // no BANDWIDTH
        assert!(parse_master("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1000\n").is_err()); // dangling
        assert!(parse_master("#EXTM3U\n").is_err()); // no variants
        assert!(parse_master("not a playlist").is_err());
    }

    #[test]
    fn malformed_media_playlists_are_rejected() {
        assert!(parse_media("#EXTM3U\n#EXTINF:abc,\nseg.ts\n").is_err());
        assert!(parse_media("#EXTM3U\n#EXT-X-TARGETDURATION:6\nseg.ts\n").is_err()); // URI w/o EXTINF
        assert!(parse_media("#EXTM3U\n#EXTINF:6.0,\nseg.ts\n").is_err()); // no target duration
        assert!(parse_media("#EXTM3U\n#EXT-X-TARGETDURATION:6\n#EXTINF:-1,\ns.ts\n").is_err());
    }

    #[test]
    fn unknown_tags_are_skipped() {
        let text = "#EXTM3U\n#EXT-X-FUTURE-TAG:stuff\n#EXT-X-TARGETDURATION:6\n#EXTINF:6.0,\ns.ts\n#EXT-X-ENDLIST\n";
        let media = parse_media(text).unwrap();
        assert_eq!(media.segments.len(), 1);
    }
}

//! Protocol-neutral description of a packaged media presentation.

use vmp_core::ladder::BitrateLadder;
use vmp_core::units::{Kbps, Seconds};

/// Errors from manifest writing and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Input text was not valid for the format.
    Parse {
        /// Format being parsed ("HLS", "MPD", ...).
        format: &'static str,
        /// Line number (1-based) where parsing failed, when known.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The presentation description is not expressible in the format.
    Unsupported {
        /// Format.
        format: &'static str,
        /// What was unsupported.
        message: String,
    },
    /// Structurally valid input that exceeds a parser resource cap
    /// (variant/segment/rendition counts, XML nesting). Caps keep a
    /// malformed or hostile manifest from exhausting memory or stack.
    Limit {
        /// Format being parsed.
        format: &'static str,
        /// Which structure hit the cap ("variants", "segments", ...).
        what: &'static str,
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl ManifestError {
    pub(crate) fn parse(format: &'static str, line: usize, message: impl Into<String>) -> Self {
        ManifestError::Parse { format, line, message: message.into() }
    }

    pub(crate) fn limit(format: &'static str, what: &'static str, limit: usize) -> Self {
        ManifestError::Limit { format, what, limit }
    }
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Parse { format, line, message } => {
                write!(f, "{format} parse error at line {line}: {message}")
            }
            ManifestError::Unsupported { format, message } => {
                write!(f, "{format} cannot express: {message}")
            }
            ManifestError::Limit { format, what, limit } => {
                write!(f, "{format} input exceeds {what} limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// Everything a client needs to play a packaged title: the ladder, audio
/// renditions, chunking and addressing. Each protocol writer renders this;
/// each parser recovers it.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaPresentation {
    /// Opaque content identifier used in URLs (already anonymized).
    pub content_token: String,
    /// Video bitrate ladder.
    pub ladder: BitrateLadder,
    /// Audio bitrates offered alongside the video.
    pub audio_bitrates: Vec<Kbps>,
    /// Playback duration of one chunk.
    pub chunk_duration: Seconds,
    /// Total presentation duration (`None` for live/event streams).
    pub total_duration: Option<Seconds>,
    /// Base URL prefix for media segments (scheme + host + path prefix).
    pub base_url: String,
    /// Whether clients may use byte-range addressing instead of chunk URLs.
    pub byte_range_addressing: bool,
}

impl MediaPresentation {
    /// Number of whole chunks in a VoD presentation (the last partial chunk
    /// counts as one). Returns `None` for live streams.
    pub fn chunk_count(&self) -> Option<u64> {
        let total = self.total_duration?;
        if self.chunk_duration.0 <= 0.0 {
            return Some(0);
        }
        Some((total.0 / self.chunk_duration.0).ceil() as u64)
    }

    /// Whether this describes a live (unbounded) presentation.
    pub fn is_live(&self) -> bool {
        self.total_duration.is_none()
    }

    /// Validates internal consistency (positive chunk duration, non-empty
    /// base URL). The ladder is valid by construction.
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.chunk_duration.0 <= 0.0 && !self.byte_range_addressing {
            return Err(ManifestError::Unsupported {
                format: "presentation",
                message: "chunk duration must be positive for chunked addressing".into(),
            });
        }
        if self.base_url.is_empty() {
            return Err(ManifestError::Unsupported {
                format: "presentation",
                message: "base URL must not be empty".into(),
            });
        }
        Ok(())
    }
}

/// A convenient builder for tests and the packager.
#[derive(Debug, Clone)]
pub struct PresentationBuilder {
    inner: MediaPresentation,
}

impl PresentationBuilder {
    /// Starts a builder with required fields.
    pub fn new(content_token: impl Into<String>, ladder: BitrateLadder) -> Self {
        PresentationBuilder {
            inner: MediaPresentation {
                content_token: content_token.into(),
                ladder,
                audio_bitrates: vec![Kbps(128)],
                chunk_duration: Seconds(6.0),
                total_duration: None,
                base_url: "https://example.net/content".into(),
                byte_range_addressing: false,
            },
        }
    }

    /// Sets audio renditions.
    pub fn audio(mut self, bitrates: Vec<Kbps>) -> Self {
        self.inner.audio_bitrates = bitrates;
        self
    }

    /// Sets the chunk duration.
    pub fn chunk_duration(mut self, d: Seconds) -> Self {
        self.inner.chunk_duration = d;
        self
    }

    /// Marks the presentation as VoD with the given total duration.
    pub fn vod(mut self, total: Seconds) -> Self {
        self.inner.total_duration = Some(total);
        self
    }

    /// Sets the media base URL.
    pub fn base_url(mut self, url: impl Into<String>) -> Self {
        self.inner.base_url = url.into();
        self
    }

    /// Enables byte-range addressing.
    pub fn byte_ranges(mut self) -> Self {
        self.inner.byte_range_addressing = true;
        self
    }

    /// Finishes, validating the result.
    pub fn build(self) -> Result<MediaPresentation, ManifestError> {
        self.inner.validate()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> BitrateLadder {
        BitrateLadder::from_bitrates(&[400, 800, 1600]).unwrap()
    }

    #[test]
    fn chunk_count_rounds_up() {
        let p = PresentationBuilder::new("v1", ladder())
            .chunk_duration(Seconds(6.0))
            .vod(Seconds(62.0))
            .build()
            .unwrap();
        assert_eq!(p.chunk_count(), Some(11));
        assert!(!p.is_live());
    }

    #[test]
    fn live_has_no_chunk_count() {
        let p = PresentationBuilder::new("v1", ladder()).build().unwrap();
        assert!(p.is_live());
        assert_eq!(p.chunk_count(), None);
    }

    #[test]
    fn validation_catches_bad_config() {
        let p = PresentationBuilder::new("v1", ladder())
            .chunk_duration(Seconds(0.0))
            .build();
        assert!(p.is_err());
        let p = PresentationBuilder::new("v1", ladder()).base_url("").build();
        assert!(p.is_err());
        // Byte-range addressing tolerates zero chunk duration.
        let p = PresentationBuilder::new("v1", ladder())
            .chunk_duration(Seconds(0.0))
            .byte_ranges()
            .build();
        assert!(p.is_ok());
    }

    #[test]
    fn error_display() {
        let e = ManifestError::parse("HLS", 3, "bad tag");
        assert_eq!(e.to_string(), "HLS parse error at line 3: bad tag");
    }
}

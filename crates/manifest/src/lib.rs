//! # vmp-manifest — streaming-protocol manifests
//!
//! The management plane's packaging function encapsulates encoded chunks
//! under a *streaming protocol* (§2). Each protocol describes the available
//! bitrates, chunk duration and chunk URLs in a *manifest* file; the paper
//! infers which protocol served a view from the manifest URL's extension
//! (Table 1). This crate implements:
//!
//! * a protocol-neutral description of a packaged presentation
//!   ([`types::MediaPresentation`]);
//! * real writers and parsers for the four HTTP adaptive protocols —
//!   HLS master/media playlists ([`hls`]), MPEG-DASH MPDs ([`dash`]),
//!   SmoothStreaming client manifests ([`mss`]) and HDS `.f4m` manifests
//!   ([`hds`]) — all round-trip tested;
//! * a tiny dependency-free XML reader/writer ([`xml`]) shared by the three
//!   XML-based formats;
//! * the Table 1 URL classifier ([`url`]), including the RTMP scheme rule
//!   and the progressive-download extension rule from §3's footnote.
//!
//! The telemetry pipeline never stores the protocol as a field: analytics
//! re-infers it by calling [`url::classify`] on the manifest URL, exactly as
//! the paper's methodology does.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod dash;
pub mod hds;
pub mod hls;
pub mod mss;
pub mod types;
pub mod url;
pub mod xml;

pub use types::{ManifestError, MediaPresentation};
pub use url::{classify, manifest_url};

//! A minimal XML reader/writer.
//!
//! Three of the four manifest formats (DASH MPD, SmoothStreaming, HDS F4M)
//! are XML documents. We only need well-formed element/attribute/text
//! documents that we ourselves generate, so this module implements a small,
//! strict subset: elements, attributes, text content, self-closing tags,
//! comments, processing instructions, and the five predefined entities.
//! No namespaces resolution (prefixes are kept verbatim), no DTDs, no CDATA.

use std::fmt::Write as _;

/// An XML element tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name (with any namespace prefix verbatim).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated text content directly inside this element.
    pub text: String,
}

impl Element {
    /// Creates an element with a tag name.
    pub fn new(name: impl Into<String>) -> Element {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new(), text: String::new() }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Element {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: Element) -> Element {
        self.children.push(child);
        self
    }

    /// Sets text content (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.text = text.into();
        self
    }

    /// Looks up an attribute value.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up an attribute and parses it.
    pub fn parse_attr<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get_attr(key)?.parse().ok()
    }

    /// First child with the given tag name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serializes the tree as a document with an XML declaration.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            let _ = write!(out, " {}=\"{}\"", k, escape(v));
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write_into(out, depth + 1);
            }
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        let _ = writeln!(out, "</{}>", self.name);
    }
}

/// Escapes the five predefined XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| XmlError::new(0, "unterminated entity"))?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            other => return Err(XmlError::new(0, format!("unknown entity &{other};"))),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// XML parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl XmlError {
    fn new(offset: usize, message: impl Into<String>) -> XmlError {
        XmlError { offset, message: message.into() }
    }
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Maximum element nesting the parser accepts. Real manifests are a handful
/// of levels deep; without a cap, a malformed `<a><a><a>…` document drives
/// the recursive-descent parser into a stack overflow instead of an error.
const MAX_DEPTH: usize = 64;

/// Parses a document into its root element.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser { input: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(XmlError::new(p.pos, "trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, XML declarations / processing instructions and
    /// comments between elements.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                let end = self.find("?>")?;
                self.pos = end + 2;
            } else if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.pos = end + 3;
            } else {
                return Ok(());
            }
        }
    }

    fn find(&self, needle: &str) -> Result<usize, XmlError> {
        let hay = &self.input[self.pos..];
        hay.windows(needle.len())
            .position(|w| w == needle.as_bytes())
            .map(|i| self.pos + i)
            .ok_or_else(|| XmlError::new(self.pos, format!("expected '{needle}'")))
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::new(self.pos, format!("expected '{}'", c as char)))
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::new(start, "expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(XmlError::new(
                self.pos,
                format!("element nesting exceeds {MAX_DEPTH} levels"),
            ));
        }
        let element = self.parse_element_inner();
        self.depth -= 1;
        element
    }

    fn parse_element_inner(&mut self) -> Result<Element, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| XmlError::new(self.pos, "eof in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(XmlError::new(self.pos, "attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.expect(quote)?;
                    element.attributes.push((key, unescape(&raw)?));
                }
                None => return Err(XmlError::new(self.pos, "eof inside tag")),
            }
        }
        // Content: text, children, comments, until the matching close tag.
        loop {
            if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.pos = end + 3;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != element.name {
                    return Err(XmlError::new(
                        self.pos,
                        format!("mismatched close tag: <{}> vs </{close}>", element.name),
                    ));
                }
                self.skip_ws();
                self.expect(b'>')?;
                element.text = element.text.trim().to_string();
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.children.push(child);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    element.text.push_str(&unescape(&raw)?);
                }
                None => {
                    return Err(XmlError::new(
                        self.pos,
                        format!("eof before </{}>", element.name),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_serialize_parse_round_trip() {
        let doc = Element::new("MPD")
            .attr("minBufferTime", "PT1.5S")
            .attr("type", "static")
            .child(
                Element::new("Period").child(
                    Element::new("AdaptationSet")
                        .attr("mimeType", "video/mp4")
                        .child(Element::new("Representation").attr("bandwidth", "800000")),
                ),
            );
        let text = doc.to_document();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn text_content_and_entities() {
        let doc = Element::new("note").with_text("a < b & \"c\"");
        let text = doc.to_document();
        assert!(text.contains("&lt;"));
        assert!(text.contains("&amp;"));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.text, "a < b & \"c\"");
    }

    #[test]
    fn self_closing_and_comments() {
        let parsed = parse(
            "<?xml version=\"1.0\"?>\n<!-- hi -->\n<root a='1'><leaf/><!-- mid --><leaf b=\"2\"/></root>",
        )
        .unwrap();
        assert_eq!(parsed.children.len(), 2);
        assert_eq!(parsed.get_attr("a"), Some("1"));
        assert_eq!(parsed.children[1].get_attr("b"), Some("2"));
    }

    #[test]
    fn find_helpers() {
        let doc = Element::new("r")
            .child(Element::new("x").attr("v", "10"))
            .child(Element::new("y"))
            .child(Element::new("x").attr("v", "20"));
        assert_eq!(doc.find("y").unwrap().name, "y");
        assert_eq!(doc.find_all("x").count(), 2);
        assert_eq!(doc.find("x").unwrap().parse_attr::<u32>("v"), Some(10));
        assert_eq!(doc.find("z"), None);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("<a><b></a>").is_err()); // mismatched
        assert!(parse("<a>").is_err()); // unterminated
        assert!(parse("<a b=c/>").is_err()); // unquoted attr
        assert!(parse("<a/><b/>").is_err()); // two roots
        assert!(parse("<a>&bogus;</a>").is_err()); // unknown entity
        assert!(parse("").is_err());
    }

    #[test]
    fn namespace_prefixes_survive() {
        let parsed = parse("<smil:root xmlns:smil=\"x\"><smil:child/></smil:root>").unwrap();
        assert_eq!(parsed.name, "smil:root");
        assert_eq!(parsed.children[0].name, "smil:child");
    }
}

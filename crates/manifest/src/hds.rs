//! Adobe HTTP Dynamic Streaming `.f4m` manifests.
//!
//! An F4M document lists one `<media>` element per encoding with a `bitrate`
//! attribute (in kbps, unlike the other formats) and a `url` attribute.
//! HDS was already in decline during the study (19% of publishers by the
//! last snapshot) but the packager still needs to emit it, and analytics
//! still needs to classify its URLs.

use crate::types::{ManifestError, MediaPresentation, PresentationBuilder};
use crate::xml::{parse as parse_xml, Element};
use vmp_core::ladder::{BitrateLadder, LadderRung, Resolution};
use vmp_core::protocol::Codec;
use vmp_core::units::{Kbps, Seconds};

/// Renders the F4M manifest for a presentation.
pub fn write_f4m(p: &MediaPresentation) -> String {
    let mut root = Element::new("manifest")
        .attr("xmlns", "http://ns.adobe.com/f4m/1.0")
        .child(Element::new("id").with_text(p.content_token.clone()))
        .child(
            Element::new("streamType")
                .with_text(if p.is_live() { "live" } else { "recorded" }),
        )
        .child(Element::new("baseURL").with_text(p.base_url.clone()));
    if let Some(total) = p.total_duration {
        root = root.child(Element::new("duration").with_text(format!("{:.3}", total.0)));
    }
    // HDS fragments: advertise the chunk duration via a bootstrap stand-in.
    root = root.child(
        Element::new("bootstrapInfo")
            .attr("profile", "named")
            .attr("id", "bootstrap0")
            .attr("fragmentDuration", format!("{:.3}", p.chunk_duration.0)),
    );
    for rung in p.ladder.rungs() {
        root = root.child(
            Element::new("media")
                .attr("bitrate", rung.bitrate.0.to_string())
                .attr("width", rung.resolution.width.to_string())
                .attr("height", rung.resolution.height.to_string())
                .attr("url", format!("{}/v{}/", p.content_token, rung.bitrate.0))
                .attr("bootstrapInfoId", "bootstrap0"),
        );
    }
    root.to_document()
}

/// Parses an F4M manifest back into a [`MediaPresentation`].
///
/// F4M carries no audio rendition list in our profile, so audio defaults to
/// a single 128 kbps track (the builder default).
pub fn parse_f4m(input: &str) -> Result<MediaPresentation, ManifestError> {
    let root =
        parse_xml(input).map_err(|e| ManifestError::parse("F4M", 0, e.to_string()))?;
    if root.name != "manifest" {
        return Err(ManifestError::parse("F4M", 0, format!("root is <{}>", root.name)));
    }
    let content_token = root
        .find("id")
        .map(|e| e.text.clone())
        .unwrap_or_default();
    let live = root
        .find("streamType")
        .map(|e| e.text == "live")
        .unwrap_or(false);
    let base_url = root.find("baseURL").map(|e| e.text.clone()).unwrap_or_default();
    let total = root
        .find("duration")
        .and_then(|e| e.text.parse::<f64>().ok())
        .map(Seconds);
    let chunk_duration = root
        .find("bootstrapInfo")
        .and_then(|e| e.parse_attr::<f64>("fragmentDuration"))
        .map(Seconds)
        .ok_or_else(|| ManifestError::parse("F4M", 0, "missing bootstrapInfo fragmentDuration"))?;

    let mut rungs = Vec::new();
    for media in root.find_all("media") {
        let bitrate: u32 = media
            .parse_attr("bitrate")
            .ok_or_else(|| ManifestError::parse("F4M", 0, "media without bitrate"))?;
        let width: u32 = media.parse_attr("width").unwrap_or(0);
        let height: u32 = media.parse_attr("height").unwrap_or(0);
        rungs.push(LadderRung {
            bitrate: Kbps(bitrate),
            resolution: Resolution { width, height },
            codec: Codec::H264,
        });
    }
    let ladder =
        BitrateLadder::new(rungs).map_err(|e| ManifestError::parse("F4M", 0, e.to_string()))?;

    let mut builder = PresentationBuilder::new(content_token, ladder)
        .chunk_duration(chunk_duration)
        .base_url(base_url);
    if !live {
        let total =
            total.ok_or_else(|| ManifestError::parse("F4M", 0, "recorded stream without duration"))?;
        builder = builder.vod(total);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn presentation() -> MediaPresentation {
        PresentationBuilder::new(
            "hds7",
            BitrateLadder::from_bitrates(&[500, 1000, 2000]).unwrap(),
        )
        .chunk_duration(Seconds(6.0))
        .vod(Seconds(300.0))
        .base_url("https://x.aws.example.com/cache")
        .build()
        .unwrap()
    }

    #[test]
    fn f4m_round_trip() {
        let p = presentation();
        let text = write_f4m(&p);
        let back = parse_f4m(&text).unwrap();
        assert_eq!(back.content_token, "hds7");
        assert_eq!(back.ladder.bitrates(), p.ladder.bitrates());
        assert_eq!(back.base_url, p.base_url);
        assert!((back.chunk_duration.0 - 6.0).abs() < 1e-9);
        assert!((back.total_duration.unwrap().0 - 300.0).abs() < 1e-6);
    }

    #[test]
    fn live_f4m() {
        let p = PresentationBuilder::new("ev", BitrateLadder::from_bitrates(&[700]).unwrap())
            .chunk_duration(Seconds(4.0))
            .build()
            .unwrap();
        let text = write_f4m(&p);
        assert!(text.contains("live"));
        let back = parse_f4m(&text).unwrap();
        assert!(back.is_live());
    }

    #[test]
    fn bitrates_are_kbps_not_bps() {
        let text = write_f4m(&presentation());
        assert!(text.contains("bitrate=\"500\""));
        assert!(!text.contains("bitrate=\"500000\""));
    }

    #[test]
    fn rejects_malformed_f4m() {
        assert!(parse_f4m("<x/>").is_err());
        assert!(parse_f4m("nope").is_err());
        let no_bitrate = "<manifest><id>x</id><streamType>recorded</streamType>\
            <duration>10</duration>\
            <bootstrapInfo fragmentDuration=\"4\"/><media url=\"u\"/></manifest>";
        assert!(parse_f4m(no_bitrate).is_err());
        let no_duration = "<manifest><id>x</id><streamType>recorded</streamType>\
            <bootstrapInfo fragmentDuration=\"4\"/><media bitrate=\"500\" url=\"u\"/></manifest>";
        assert!(parse_f4m(no_duration).is_err());
    }
}

//! # vmp-cdn — the content-distribution substrate
//!
//! §2's distribution function and §4.3's object of study: publishers push
//! packaged content to one or more CDNs; clients fetch chunks from CDN edge
//! servers; some publishers use a broker to pick the CDN per view.
//!
//! * [`origin`] — per-CDN origin storage with a content-addressed ledger and
//!   the §6 *bitrate-tolerance deduplication* analysis (Fig 18): a CDN can
//!   drop redundant copies of the same underlying content stored by
//!   different publishers at the same or similar bitrates.
//! * [`edge`] — LRU edge caches in front of the origin; cache misses cost
//!   origin round trips (the setting §6 quantifies redundancy in).
//! * [`routing`] — edge selection: consistent-hash DNS mapping or anycast
//!   (one of the top three CDNs is anycast; route flaps can sever ongoing
//!   transfers, §4.3).
//! * [`strategy`] — a publisher's multi-CDN configuration: which CDNs carry
//!   which content class (30% of multi-CDN publishers keep a VoD-only CDN,
//!   19% a live-only CDN), with weights.
//! * [`broker`] — per-view CDN selection: weighted, or QoE-aware using
//!   decayed per-CDN performance scores (the Conviva-style service §2
//!   describes), with per-CDN circuit breakers providing §2's fault
//!   isolation.
//! * [`error`] — typed delivery failures ([`FetchError`]) surfaced during
//!   injected faults instead of the old always-succeeds behaviour.
//! * [`capacity`] — per-edge admission control: finite request capacity per
//!   accounting bucket with a priority floor so in-progress sessions outrank
//!   new joins when a flash crowd saturates an edge.
//! * [`shield`] — origin shield with request coalescing: N simultaneous
//!   misses for one chunk collapse into one origin fetch returning
//!   byte-identical payloads.
//! * [`budget`] — shared per-CDN retry budget layered over per-session
//!   backoff so correlated retry storms cannot amplify an outage.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod broker;
pub mod budget;
pub mod capacity;
pub mod edge;
pub mod error;
pub mod origin;
pub mod routing;
pub mod shield;
pub mod strategy;

pub use broker::{Broker, BrokerPolicy};
pub use budget::{BudgetConfig, RetryBudget};
pub use capacity::{CapacityConfig, EdgeCapacity};
pub use edge::{CacheOutcome, EdgeCache, EdgeCluster};
pub use error::FetchError;
pub use origin::{ContentKey, OriginEntry, OriginStore};
pub use shield::{OriginShield, ShieldOutcome};
pub use strategy::CdnStrategy;

//! Per-edge capacity model with admission control / load shedding.
//!
//! A flash crowd concentrates correlated requests onto a handful of edges;
//! a real edge has a finite request-service rate and protects itself by
//! shedding load rather than queueing into collapse. [`EdgeCapacity`]
//! models that: virtual time is quantized into accounting buckets and each
//! edge admits at most `capacity × bucket` requests per bucket.
//!
//! The shedding policy implements a *priority floor*: new joins may only
//! use a configured fraction of the bucket (`join_headroom`), so when the
//! edge saturates, sessions already in progress keep streaming while new
//! joins are shed first — degrading the tail of the queue, not everyone at
//! once. A shed request surfaces as the typed
//! [`FetchError::Shed`](crate::error::FetchError), which the player treats
//! like any other retryable failure (backoff, then failover).
//!
//! The simulation replays sessions sequentially, so requests arrive in
//! session order rather than global time order; counts are therefore kept
//! per bucket in a map instead of a single rolling window, making the
//! admission decision deterministic in simulation order.

use std::collections::BTreeMap;
use vmp_core::units::Seconds;

/// Tuning for one CDN's edge capacity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityConfig {
    /// Sustainable request rate per edge (requests per virtual second).
    pub per_edge_rps: f64,
    /// Accounting bucket width (virtual seconds).
    pub bucket: Seconds,
    /// Fraction of a bucket's capacity that *new joins* may consume, in
    /// `(0, 1]`. In-progress sessions may use the full bucket, so they
    /// outrank joins whenever the edge runs hot.
    pub join_headroom: f64,
}

impl Default for CapacityConfig {
    fn default() -> CapacityConfig {
        CapacityConfig { per_edge_rps: 50.0, bucket: Seconds(10.0), join_headroom: 0.7 }
    }
}

impl CapacityConfig {
    /// Requests admitted per bucket at full priority.
    fn bucket_capacity(&self) -> u64 {
        (self.per_edge_rps * self.bucket.0).max(1.0) as u64
    }

    /// Requests admitted per bucket for new joins (the priority floor
    /// reserves the rest for in-progress sessions).
    fn join_capacity(&self) -> u64 {
        ((self.bucket_capacity() as f64) * self.join_headroom).max(1.0) as u64
    }

    /// Validates the tuning.
    pub fn validate(&self) -> Result<(), String> {
        if self.per_edge_rps <= 0.0 {
            return Err("per_edge_rps must be positive".into());
        }
        if self.bucket.0 <= 0.0 {
            return Err("capacity bucket must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.join_headroom) || self.join_headroom == 0.0 {
            return Err("join_headroom must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// Admission control for one CDN's edge cluster (one ledger per region).
pub struct EdgeCapacity {
    config: CapacityConfig,
    /// Per-region, per-bucket admitted-request counts.
    admitted: Vec<BTreeMap<u64, u64>>,
    shed: u64,
    obs_shed: vmp_obs::Counter,
}

impl std::fmt::Debug for EdgeCapacity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeCapacity")
            .field("config", &self.config)
            .field("regions", &self.admitted.len())
            .field("shed", &self.shed)
            .finish()
    }
}

impl EdgeCapacity {
    /// A capacity ledger for `regions` edges.
    pub fn new(regions: usize, config: CapacityConfig) -> Result<EdgeCapacity, String> {
        config.validate()?;
        Ok(EdgeCapacity {
            config,
            admitted: (0..regions).map(|_| BTreeMap::new()).collect(),
            shed: 0,
            obs_shed: vmp_obs::counter("cdn.shed"),
        })
    }

    /// Decides whether the edge serving `region` admits a request at
    /// virtual time `now`. `joining` marks a session's first request (its
    /// join); joins are capped at the `join_headroom` fraction of the
    /// bucket while in-progress requests may fill it completely. A refusal
    /// increments the shed counters; the caller surfaces it as
    /// [`FetchError::Shed`](crate::error::FetchError).
    pub fn admit(&mut self, region: usize, now: Seconds, joining: bool) -> bool {
        let Some(ledger) = self.admitted.get_mut(region) else {
            return true; // untracked region: no capacity opinion
        };
        let bucket = (now.0.max(0.0) / self.config.bucket.0) as u64;
        let count = ledger.entry(bucket).or_insert(0);
        let limit = if joining {
            self.config.join_capacity()
        } else {
            self.config.bucket_capacity()
        };
        if *count < limit {
            *count += 1;
            true
        } else {
            self.shed += 1;
            self.obs_shed.inc();
            false
        }
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Peak admitted requests in any single (region, bucket) cell.
    pub fn peak_bucket_load(&self) -> u64 {
        self.admitted
            .iter()
            .flat_map(|ledger| ledger.values().copied())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capacity(rps: f64, headroom: f64) -> EdgeCapacity {
        EdgeCapacity::new(
            2,
            CapacityConfig { per_edge_rps: rps, bucket: Seconds(10.0), join_headroom: headroom },
        )
        .unwrap()
    }

    #[test]
    fn admits_until_bucket_capacity() {
        let mut c = capacity(1.0, 1.0); // 10 requests per 10s bucket
        let admitted = (0..15).filter(|_| c.admit(0, Seconds(1.0), false)).count();
        assert_eq!(admitted, 10);
        assert_eq!(c.shed(), 5);
        // The next bucket has fresh capacity.
        assert!(c.admit(0, Seconds(11.0), false));
    }

    #[test]
    fn joins_are_shed_before_in_progress_sessions() {
        let mut c = capacity(1.0, 0.5); // joins capped at 5 of 10
        let joins = (0..10).filter(|_| c.admit(0, Seconds(0.0), true)).count();
        assert_eq!(joins, 5, "joins stop at the priority floor");
        // In-progress sessions still fit in the remaining capacity.
        let streaming = (0..10).filter(|_| c.admit(0, Seconds(0.0), false)).count();
        assert_eq!(streaming, 5);
        assert_eq!(c.shed(), 10);
    }

    #[test]
    fn regions_are_independent() {
        let mut c = capacity(0.1, 1.0); // 1 request per bucket
        assert!(c.admit(0, Seconds(0.0), false));
        assert!(!c.admit(0, Seconds(0.0), false));
        assert!(c.admit(1, Seconds(0.0), false), "other region unaffected");
        // Untracked regions never shed.
        assert!(c.admit(9, Seconds(0.0), false));
    }

    #[test]
    fn out_of_order_arrivals_land_in_their_own_buckets() {
        let mut c = capacity(0.1, 1.0);
        assert!(c.admit(0, Seconds(50.0), false));
        // An earlier-clock session arrives later in simulation order; its
        // bucket is separate and still has room.
        assert!(c.admit(0, Seconds(5.0), false));
        assert!(!c.admit(0, Seconds(52.0), false));
        assert_eq!(c.peak_bucket_load(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(EdgeCapacity::new(1, CapacityConfig { per_edge_rps: 0.0, ..CapacityConfig::default() }).is_err());
        assert!(EdgeCapacity::new(1, CapacityConfig { bucket: Seconds(0.0), ..CapacityConfig::default() }).is_err());
        assert!(EdgeCapacity::new(1, CapacityConfig { join_headroom: 0.0, ..CapacityConfig::default() }).is_err());
        assert!(EdgeCapacity::new(1, CapacityConfig { join_headroom: 1.5, ..CapacityConfig::default() }).is_err());
    }
}

//! CDN brokering: per-view CDN selection.
//!
//! §2: "some publishers use a CDN broker to select the best CDN for a given
//! client view... even some publishers who only use a single CDN use a CDN
//! broker for management services such as monitoring and fault isolation."
//! The broker here supports weighted selection (the default management-plane
//! behaviour) and QoE-aware selection driven by exponentially-decayed
//! per-CDN performance scores, plus mid-stream failover.
//!
//! The *fault isolation* half of §2's broker description is the health
//! gate: per-CDN [`CircuitBreaker`]s fed by fetch successes/failures.
//! A CDN that fails `failure_threshold` consecutive fetches is quarantined
//! — [`Broker::select_at`] and [`Broker::failover_at`] skip it — and
//! half-opens after a cooldown on the virtual clock, admitting probe
//! traffic again.

use crate::strategy::CdnStrategy;
use parking_lot::Mutex;
use std::collections::HashMap;
use vmp_core::cdn::CdnName;
use vmp_core::content::ContentClass;
use vmp_core::units::Seconds;
use vmp_faults::{BreakerConfig, CircuitBreaker};
use vmp_stats::{Discrete, Distribution, Rng};

/// Broker selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokerPolicy {
    /// Pick proportionally to configured weights.
    Weighted,
    /// Pick the CDN with the best decayed QoE score (exploration ε = 10%).
    QoeAware,
}

/// Decayed per-CDN performance score (higher is better).
#[derive(Debug, Default, Clone, Copy)]
struct Score {
    value: f64,
    samples: u64,
}

/// A CDN broker shared across concurrent sessions (hence the mutex; the
/// paper's broker aggregates telemetry from all clients).
#[derive(Debug)]
pub struct Broker {
    policy: BrokerPolicy,
    scores: Mutex<HashMap<CdnName, Score>>,
    /// Per-CDN circuit breakers (the §2 fault-isolation service).
    breakers: Mutex<HashMap<CdnName, CircuitBreaker>>,
    breaker_config: BreakerConfig,
    /// EWMA decay for score updates.
    alpha: f64,
    /// Exploration probability under [`BrokerPolicy::QoeAware`].
    epsilon: f64,
    obs_selections: vmp_obs::Counter,
    obs_failovers: vmp_obs::Counter,
    obs_reports: vmp_obs::Counter,
    obs_circuit_trips: vmp_obs::Counter,
    obs_quarantine_skips: vmp_obs::Counter,
}

impl Broker {
    /// Creates a broker with the default circuit-breaker tuning.
    pub fn new(policy: BrokerPolicy) -> Broker {
        Broker::with_breaker(policy, BreakerConfig::default())
    }

    /// Creates a broker with explicit circuit-breaker tuning.
    pub fn with_breaker(policy: BrokerPolicy, breaker_config: BreakerConfig) -> Broker {
        Broker {
            policy,
            scores: Mutex::new(HashMap::new()),
            breakers: Mutex::new(HashMap::new()),
            breaker_config,
            alpha: 0.2,
            epsilon: 0.1,
            obs_selections: vmp_obs::counter("cdn.broker_selections"),
            obs_failovers: vmp_obs::counter("cdn.broker_failovers"),
            obs_reports: vmp_obs::counter("cdn.broker_qoe_reports"),
            obs_circuit_trips: vmp_obs::counter("cdn.circuit_trips"),
            obs_quarantine_skips: vmp_obs::counter("cdn.quarantine_skips"),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BrokerPolicy {
        self.policy
    }

    /// Selects the CDN for a new view of `class` content under `strategy`,
    /// ignoring breaker state (virtual time zero). Equivalent to
    /// [`Broker::select_at`] before any failure has been recorded.
    pub fn select(
        &self,
        strategy: &CdnStrategy,
        class: ContentClass,
        rng: &mut Rng,
    ) -> Option<CdnName> {
        self.select_at(strategy, class, Seconds::ZERO, rng)
    }

    /// Selects the CDN for a new view at virtual time `now`, skipping
    /// quarantined CDNs (open circuit breakers). When *every* eligible CDN
    /// is quarantined the gate stands aside and the full eligible set is
    /// used — serving degraded traffic beats serving nothing.
    /// Returns `None` when the strategy has no CDN admitting the class.
    pub fn select_at(
        &self,
        strategy: &CdnStrategy,
        class: ContentClass,
        now: Seconds,
        rng: &mut Rng,
    ) -> Option<CdnName> {
        let mut eligible = strategy.eligible(class);
        if eligible.is_empty() {
            return None;
        }
        let healthy: Vec<_> = eligible
            .iter()
            .copied()
            .filter(|a| !self.quarantined(a.cdn, now))
            .collect();
        if healthy.is_empty() {
            self.obs_quarantine_skips.inc();
        } else {
            if healthy.len() < eligible.len() {
                self.obs_quarantine_skips.inc();
            }
            eligible = healthy;
        }
        self.obs_selections.inc();
        match self.policy {
            BrokerPolicy::Weighted => {
                let weights: Vec<f64> = eligible.iter().map(|a| a.weight).collect();
                let dist = Discrete::new(&weights).ok()?;
                Some(eligible[dist.sample(rng)].cdn)
            }
            BrokerPolicy::QoeAware => {
                if rng.chance(self.epsilon) {
                    // Explore uniformly.
                    return Some(rng.choose(&eligible).cdn);
                }
                let scores = self.scores.lock();
                eligible
                    .iter()
                    .max_by(|a, b| {
                        let sa = scores.get(&a.cdn).map(|s| s.value).unwrap_or(f64::MAX);
                        let sb = scores.get(&b.cdn).map(|s| s.value).unwrap_or(f64::MAX);
                        sa.partial_cmp(&sb).expect("scores are finite")
                    })
                    .map(|a| a.cdn)
            }
        }
    }

    /// Picks a different CDN after a mid-stream failure on `failed`,
    /// ignoring breaker state (virtual time zero). See
    /// [`Broker::failover_at`] for the contract.
    pub fn failover(
        &self,
        strategy: &CdnStrategy,
        class: ContentClass,
        failed: CdnName,
        rng: &mut Rng,
    ) -> Option<CdnName> {
        self.failover_at(strategy, class, failed, Seconds::ZERO, rng)
    }

    /// Picks a different CDN after a mid-stream failure on `failed` at
    /// virtual time `now`, preferring non-quarantined alternatives (falling
    /// back to quarantined ones when every alternative's breaker is open).
    ///
    /// # Contract
    ///
    /// Returns `None` **if and only if** the strategy has no eligible CDN
    /// other than `failed` — i.e. a single-CDN strategy (or one whose only
    /// other CDNs don't admit `class`). `None` means the view has nowhere
    /// left to go: callers **must** treat it as a fatal, session-ending
    /// condition and record the view with
    /// `ExitCause::FatalCdnFailure` (§4 counts such views), not silently
    /// keep fetching from the failed CDN.
    pub fn failover_at(
        &self,
        strategy: &CdnStrategy,
        class: ContentClass,
        failed: CdnName,
        now: Seconds,
        rng: &mut Rng,
    ) -> Option<CdnName> {
        let alternatives: Vec<_> = strategy
            .eligible(class)
            .into_iter()
            .filter(|a| a.cdn != failed)
            .collect();
        if alternatives.is_empty() {
            return None;
        }
        let healthy: Vec<_> = alternatives
            .iter()
            .copied()
            .filter(|a| !self.quarantined(a.cdn, now))
            .collect();
        self.obs_failovers.inc();
        let pool = if healthy.is_empty() { &alternatives } else { &healthy };
        Some(rng.choose(pool).cdn)
    }

    /// Records a fetch failure against `cdn` at virtual time `now`,
    /// feeding its circuit breaker. Emits a `CircuitOpen` event and bumps
    /// `cdn.circuit_trips` when this failure trips the breaker.
    pub fn record_fetch_failure(&self, cdn: CdnName, now: Seconds) {
        let mut breakers = self.breakers.lock();
        let breaker = breakers
            .entry(cdn)
            .or_insert_with(|| CircuitBreaker::new(self.breaker_config));
        if breaker.record_failure(now) {
            self.obs_circuit_trips.inc();
            vmp_obs::event(
                vmp_obs::EventKind::CircuitOpen,
                format!("{cdn:?} quarantined at t={:.0}s until t={:.0}s", now.0, breaker.open_until().0),
            );
            vmp_obs::session_trace::emit(
                vmp_obs::session_trace::TraceEventKind::BreakerOpen,
                now.0,
                cdn.dense_index() as u8,
                0,
                breaker.open_until().0 - now.0,
            );
        }
    }

    /// Records a successful fetch from `cdn`: resets its failure streak and
    /// closes a half-open breaker.
    pub fn record_fetch_success(&self, cdn: CdnName) {
        if let Some(b) = self.breakers.lock().get_mut(&cdn) {
            b.record_success();
        }
    }

    /// Timestamped success path: identical to
    /// [`Broker::record_fetch_success`] except the outcome also feeds the
    /// breaker's rolling failure-rate window (meaningful when the breaker
    /// config arms a `FailureRateTrip`).
    pub fn record_fetch_success_at(&self, cdn: CdnName, now: Seconds) {
        if let Some(b) = self.breakers.lock().get_mut(&cdn) {
            b.record_success_at(now);
        }
    }

    /// Whether `cdn` is currently quarantined (breaker open) at `now`.
    /// Advances `Open → HalfOpen` transitions as a side effect, so a query
    /// after the cooldown admits probe traffic.
    pub fn quarantined(&self, cdn: CdnName, now: Seconds) -> bool {
        self.breakers
            .lock()
            .get_mut(&cdn)
            .map(|b| !b.allows(now))
            .unwrap_or(false)
    }

    /// Total circuit-breaker trips across all CDNs.
    pub fn circuit_trips(&self) -> u64 {
        self.breakers.lock().values().map(|b| b.trips()).sum()
    }

    /// Reports an observed per-view QoE score for a CDN (e.g. average
    /// bitrate over rebuffering-penalized time). Higher is better.
    pub fn report(&self, cdn: CdnName, score: f64) {
        if !score.is_finite() {
            return;
        }
        self.obs_reports.inc();
        let mut scores = self.scores.lock();
        let entry = scores.entry(cdn).or_default();
        if entry.samples == 0 {
            entry.value = score;
        } else {
            entry.value = (1.0 - self.alpha) * entry.value + self.alpha * score;
        }
        entry.samples += 1;
    }

    /// The current score for a CDN, if any views were reported.
    pub fn score(&self, cdn: CdnName) -> Option<f64> {
        let scores = self.scores.lock();
        scores.get(&cdn).filter(|s| s.samples > 0).map(|s| s.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{CdnAssignment, CdnScope};

    fn strategy() -> CdnStrategy {
        CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 3.0, scope: CdnScope::All },
            CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
        ])
        .unwrap()
    }

    #[test]
    fn weighted_selection_follows_weights() {
        let broker = Broker::new(BrokerPolicy::Weighted);
        let s = strategy();
        let mut rng = Rng::seed_from(1);
        let mut a = 0;
        for _ in 0..10_000 {
            if broker.select(&s, ContentClass::Vod, &mut rng) == Some(CdnName::A) {
                a += 1;
            }
        }
        let share = a as f64 / 10_000.0;
        assert!((share - 0.75).abs() < 0.03, "share {share}");
    }

    #[test]
    fn qoe_aware_prefers_better_cdn() {
        let broker = Broker::new(BrokerPolicy::QoeAware);
        let s = strategy();
        for _ in 0..50 {
            broker.report(CdnName::A, 1000.0);
            broker.report(CdnName::B, 4000.0);
        }
        let mut rng = Rng::seed_from(2);
        let mut b = 0;
        for _ in 0..1000 {
            if broker.select(&s, ContentClass::Vod, &mut rng) == Some(CdnName::B) {
                b += 1;
            }
        }
        // ε = 10% exploration, half of which still lands on B.
        assert!(b > 900, "B selected {b}");
    }

    #[test]
    fn unknown_cdns_are_explored_first() {
        let broker = Broker::new(BrokerPolicy::QoeAware);
        broker.report(CdnName::A, 9000.0);
        // B has no data → treated as +∞ → gets picked (optimistic start).
        let s = strategy();
        let mut rng = Rng::seed_from(3);
        let pick = broker.select(&s, ContentClass::Vod, &mut rng);
        assert_eq!(pick, Some(CdnName::B));
    }

    #[test]
    fn failover_avoids_failed_cdn() {
        let broker = Broker::new(BrokerPolicy::Weighted);
        let s = strategy();
        let mut rng = Rng::seed_from(4);
        for _ in 0..100 {
            let next = broker.failover(&s, ContentClass::Vod, CdnName::A, &mut rng);
            assert_eq!(next, Some(CdnName::B));
        }
        // Single-CDN strategy has no failover target.
        let single = CdnStrategy::single(CdnName::A);
        assert_eq!(broker.failover(&single, ContentClass::Vod, CdnName::A, &mut rng), None);
    }

    #[test]
    fn segregation_respected_by_selection() {
        let s = CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::VodOnly },
            CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::LiveOnly },
        ])
        .unwrap();
        let broker = Broker::new(BrokerPolicy::Weighted);
        let mut rng = Rng::seed_from(5);
        for _ in 0..50 {
            assert_eq!(broker.select(&s, ContentClass::Vod, &mut rng), Some(CdnName::A));
            assert_eq!(broker.select(&s, ContentClass::Live, &mut rng), Some(CdnName::B));
        }
    }

    #[test]
    fn circuit_breaker_quarantines_after_consecutive_failures() {
        let broker = Broker::new(BrokerPolicy::Weighted);
        let s = strategy();
        let mut rng = Rng::seed_from(21);
        for t in 0..3 {
            broker.record_fetch_failure(CdnName::A, Seconds(t as f64));
        }
        assert!(broker.quarantined(CdnName::A, Seconds(10.0)));
        assert_eq!(broker.circuit_trips(), 1);
        // Selection avoids the quarantined CDN entirely.
        for _ in 0..200 {
            assert_eq!(
                broker.select_at(&s, ContentClass::Vod, Seconds(10.0), &mut rng),
                Some(CdnName::B)
            );
        }
        // Failover from B has nowhere healthy to go but A; it still serves.
        assert_eq!(
            broker.failover_at(&s, ContentClass::Vod, CdnName::B, Seconds(10.0), &mut rng),
            Some(CdnName::A)
        );
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_closes_on_success() {
        let broker = Broker::with_breaker(
            BrokerPolicy::Weighted,
            vmp_faults::BreakerConfig {
                failure_threshold: 2,
                cooldown: Seconds(30.0),
                ..vmp_faults::BreakerConfig::default()
            },
        );
        broker.record_fetch_failure(CdnName::C, Seconds(0.0));
        broker.record_fetch_failure(CdnName::C, Seconds(1.0));
        assert!(broker.quarantined(CdnName::C, Seconds(5.0)));
        // Cooldown elapsed: probe traffic admitted, success closes.
        assert!(!broker.quarantined(CdnName::C, Seconds(40.0)));
        broker.record_fetch_success(CdnName::C);
        assert!(!broker.quarantined(CdnName::C, Seconds(41.0)));
        // A fresh streak is needed to trip again.
        broker.record_fetch_failure(CdnName::C, Seconds(42.0));
        assert!(!broker.quarantined(CdnName::C, Seconds(43.0)));
    }

    #[test]
    fn success_resets_failure_streak() {
        let broker = Broker::new(BrokerPolicy::Weighted);
        for t in 0..2 {
            broker.record_fetch_failure(CdnName::B, Seconds(t as f64));
        }
        broker.record_fetch_success(CdnName::B);
        broker.record_fetch_failure(CdnName::B, Seconds(3.0));
        assert!(!broker.quarantined(CdnName::B, Seconds(4.0)));
        assert_eq!(broker.circuit_trips(), 0);
    }

    #[test]
    fn report_ewma_converges() {
        let broker = Broker::new(BrokerPolicy::QoeAware);
        for _ in 0..100 {
            broker.report(CdnName::C, 2000.0);
        }
        let s = broker.score(CdnName::C).unwrap();
        assert!((s - 2000.0).abs() < 1e-6);
        broker.report(CdnName::C, f64::NAN); // ignored
        assert!((broker.score(CdnName::C).unwrap() - 2000.0).abs() < 1e-6);
        assert_eq!(broker.score(CdnName::D), None);
    }
}

//! CDN brokering: per-view CDN selection.
//!
//! §2: "some publishers use a CDN broker to select the best CDN for a given
//! client view... even some publishers who only use a single CDN use a CDN
//! broker for management services such as monitoring and fault isolation."
//! The broker here supports weighted selection (the default management-plane
//! behaviour) and QoE-aware selection driven by exponentially-decayed
//! per-CDN performance scores, plus mid-stream failover.

use crate::strategy::CdnStrategy;
use parking_lot::Mutex;
use std::collections::HashMap;
use vmp_core::cdn::CdnName;
use vmp_core::content::ContentClass;
use vmp_stats::{Discrete, Distribution, Rng};

/// Broker selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokerPolicy {
    /// Pick proportionally to configured weights.
    Weighted,
    /// Pick the CDN with the best decayed QoE score (exploration ε = 10%).
    QoeAware,
}

/// Decayed per-CDN performance score (higher is better).
#[derive(Debug, Default, Clone, Copy)]
struct Score {
    value: f64,
    samples: u64,
}

/// A CDN broker shared across concurrent sessions (hence the mutex; the
/// paper's broker aggregates telemetry from all clients).
#[derive(Debug)]
pub struct Broker {
    policy: BrokerPolicy,
    scores: Mutex<HashMap<CdnName, Score>>,
    /// EWMA decay for score updates.
    alpha: f64,
    /// Exploration probability under [`BrokerPolicy::QoeAware`].
    epsilon: f64,
    obs_selections: vmp_obs::Counter,
    obs_failovers: vmp_obs::Counter,
    obs_reports: vmp_obs::Counter,
}

impl Broker {
    /// Creates a broker.
    pub fn new(policy: BrokerPolicy) -> Broker {
        Broker {
            policy,
            scores: Mutex::new(HashMap::new()),
            alpha: 0.2,
            epsilon: 0.1,
            obs_selections: vmp_obs::counter("cdn.broker_selections"),
            obs_failovers: vmp_obs::counter("cdn.broker_failovers"),
            obs_reports: vmp_obs::counter("cdn.broker_qoe_reports"),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BrokerPolicy {
        self.policy
    }

    /// Selects the CDN for a new view of `class` content under `strategy`.
    /// Returns `None` when the strategy has no CDN admitting the class.
    pub fn select(
        &self,
        strategy: &CdnStrategy,
        class: ContentClass,
        rng: &mut Rng,
    ) -> Option<CdnName> {
        let eligible = strategy.eligible(class);
        if eligible.is_empty() {
            return None;
        }
        self.obs_selections.inc();
        match self.policy {
            BrokerPolicy::Weighted => {
                let weights: Vec<f64> = eligible.iter().map(|a| a.weight).collect();
                let dist = Discrete::new(&weights).ok()?;
                Some(eligible[dist.sample(rng)].cdn)
            }
            BrokerPolicy::QoeAware => {
                if rng.chance(self.epsilon) {
                    // Explore uniformly.
                    return Some(rng.choose(&eligible).cdn);
                }
                let scores = self.scores.lock();
                eligible
                    .iter()
                    .max_by(|a, b| {
                        let sa = scores.get(&a.cdn).map(|s| s.value).unwrap_or(f64::MAX);
                        let sb = scores.get(&b.cdn).map(|s| s.value).unwrap_or(f64::MAX);
                        sa.partial_cmp(&sb).expect("scores are finite")
                    })
                    .map(|a| a.cdn)
            }
        }
    }

    /// Picks a different CDN after a mid-stream failure on `failed`.
    /// Returns `None` when no alternative exists.
    pub fn failover(
        &self,
        strategy: &CdnStrategy,
        class: ContentClass,
        failed: CdnName,
        rng: &mut Rng,
    ) -> Option<CdnName> {
        let alternatives: Vec<_> = strategy
            .eligible(class)
            .into_iter()
            .filter(|a| a.cdn != failed)
            .collect();
        if alternatives.is_empty() {
            None
        } else {
            self.obs_failovers.inc();
            Some(rng.choose(&alternatives).cdn)
        }
    }

    /// Reports an observed per-view QoE score for a CDN (e.g. average
    /// bitrate over rebuffering-penalized time). Higher is better.
    pub fn report(&self, cdn: CdnName, score: f64) {
        if !score.is_finite() {
            return;
        }
        self.obs_reports.inc();
        let mut scores = self.scores.lock();
        let entry = scores.entry(cdn).or_default();
        if entry.samples == 0 {
            entry.value = score;
        } else {
            entry.value = (1.0 - self.alpha) * entry.value + self.alpha * score;
        }
        entry.samples += 1;
    }

    /// The current score for a CDN, if any views were reported.
    pub fn score(&self, cdn: CdnName) -> Option<f64> {
        let scores = self.scores.lock();
        scores.get(&cdn).filter(|s| s.samples > 0).map(|s| s.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{CdnAssignment, CdnScope};

    fn strategy() -> CdnStrategy {
        CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 3.0, scope: CdnScope::All },
            CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
        ])
        .unwrap()
    }

    #[test]
    fn weighted_selection_follows_weights() {
        let broker = Broker::new(BrokerPolicy::Weighted);
        let s = strategy();
        let mut rng = Rng::seed_from(1);
        let mut a = 0;
        for _ in 0..10_000 {
            if broker.select(&s, ContentClass::Vod, &mut rng) == Some(CdnName::A) {
                a += 1;
            }
        }
        let share = a as f64 / 10_000.0;
        assert!((share - 0.75).abs() < 0.03, "share {share}");
    }

    #[test]
    fn qoe_aware_prefers_better_cdn() {
        let broker = Broker::new(BrokerPolicy::QoeAware);
        let s = strategy();
        for _ in 0..50 {
            broker.report(CdnName::A, 1000.0);
            broker.report(CdnName::B, 4000.0);
        }
        let mut rng = Rng::seed_from(2);
        let mut b = 0;
        for _ in 0..1000 {
            if broker.select(&s, ContentClass::Vod, &mut rng) == Some(CdnName::B) {
                b += 1;
            }
        }
        // ε = 10% exploration, half of which still lands on B.
        assert!(b > 900, "B selected {b}");
    }

    #[test]
    fn unknown_cdns_are_explored_first() {
        let broker = Broker::new(BrokerPolicy::QoeAware);
        broker.report(CdnName::A, 9000.0);
        // B has no data → treated as +∞ → gets picked (optimistic start).
        let s = strategy();
        let mut rng = Rng::seed_from(3);
        let pick = broker.select(&s, ContentClass::Vod, &mut rng);
        assert_eq!(pick, Some(CdnName::B));
    }

    #[test]
    fn failover_avoids_failed_cdn() {
        let broker = Broker::new(BrokerPolicy::Weighted);
        let s = strategy();
        let mut rng = Rng::seed_from(4);
        for _ in 0..100 {
            let next = broker.failover(&s, ContentClass::Vod, CdnName::A, &mut rng);
            assert_eq!(next, Some(CdnName::B));
        }
        // Single-CDN strategy has no failover target.
        let single = CdnStrategy::single(CdnName::A);
        assert_eq!(broker.failover(&single, ContentClass::Vod, CdnName::A, &mut rng), None);
    }

    #[test]
    fn segregation_respected_by_selection() {
        let s = CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::VodOnly },
            CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::LiveOnly },
        ])
        .unwrap();
        let broker = Broker::new(BrokerPolicy::Weighted);
        let mut rng = Rng::seed_from(5);
        for _ in 0..50 {
            assert_eq!(broker.select(&s, ContentClass::Vod, &mut rng), Some(CdnName::A));
            assert_eq!(broker.select(&s, ContentClass::Live, &mut rng), Some(CdnName::B));
        }
    }

    #[test]
    fn report_ewma_converges() {
        let broker = Broker::new(BrokerPolicy::QoeAware);
        for _ in 0..100 {
            broker.report(CdnName::C, 2000.0);
        }
        let s = broker.score(CdnName::C).unwrap();
        assert!((s - 2000.0).abs() < 1e-6);
        broker.report(CdnName::C, f64::NAN); // ignored
        assert!((broker.score(CdnName::C).unwrap() - 2000.0).abs() < 1e-6);
        assert_eq!(broker.score(CdnName::D), None);
    }
}

//! Edge selection: DNS/consistent-hash mapping vs BGP anycast.
//!
//! §4.3 observes that one of the top three CDNs uses anycast, and that
//! anycast is susceptible to BGP route changes that sever ongoing TCP
//! connections — yet this has not blocked reliable video delivery (chunked
//! transfers are short). The model captures exactly that: anycast adds a
//! small per-chunk probability of a connection reset (costing one extra
//! round trip), while DNS mapping is stable.

use vmp_core::cdn::{CdnName, RoutingScheme};
use vmp_core::ids::EdgeId;
use vmp_stats::Rng;

/// Consistent-hash ring mapping client keys to edges.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// (point, edge) pairs sorted by point.
    points: Vec<(u64, EdgeId)>,
}

impl HashRing {
    /// Builds a ring with `edges` edges and `replicas` virtual nodes each.
    pub fn new(edges: usize, replicas: usize) -> HashRing {
        assert!(edges > 0 && replicas > 0, "ring needs edges and replicas");
        let mut points = Vec::with_capacity(edges * replicas);
        for e in 0..edges {
            for r in 0..replicas {
                points.push((hash64((e as u64) << 32 | r as u64), EdgeId::new(e as u32)));
            }
        }
        points.sort();
        points.dedup_by_key(|(p, _)| *p);
        HashRing { points }
    }

    /// The edge responsible for a client key.
    pub fn route(&self, client_key: u64) -> EdgeId {
        let h = hash64(client_key);
        match self.points.binary_search_by_key(&h, |(p, _)| *p) {
            Ok(i) => self.points[i].1,
            Err(i) if i == self.points.len() => self.points[0].1,
            Err(i) => self.points[i].1,
        }
    }

    /// Number of distinct ring points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// SplitMix64-style avalanche hash.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Per-chunk connection events produced by the routing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Which edge serves the chunk.
    pub edge: EdgeId,
    /// Whether an anycast route flap reset the connection mid-transfer
    /// (costs one reconnect round trip in the session simulator).
    pub connection_reset: bool,
}

/// Routing model for one CDN.
#[derive(Debug, Clone)]
pub struct Router {
    scheme: RoutingScheme,
    ring: HashRing,
    /// Per-chunk probability of an anycast route flap.
    flap_probability: f64,
}

impl Router {
    /// Builds the router for a CDN with `edges` edge clusters.
    pub fn for_cdn(cdn: CdnName, edges: usize) -> Router {
        let scheme = RoutingScheme::for_cdn(cdn);
        Router {
            scheme,
            ring: HashRing::new(edges.max(1), 16),
            // Measured anycast prefix-shift rates are small; one flap per
            // ~2000 chunk downloads keeps the §4.3 observation visible
            // without dominating QoE.
            flap_probability: match scheme {
                RoutingScheme::Anycast => 5e-4,
                RoutingScheme::DnsUnicast => 0.0,
            },
        }
    }

    /// The routing scheme in use.
    pub fn scheme(&self) -> RoutingScheme {
        self.scheme
    }

    /// Routes one chunk request for a client.
    pub fn route_chunk(&self, client_key: u64, rng: &mut Rng) -> RouteDecision {
        match self.scheme {
            RoutingScheme::DnsUnicast => {
                RouteDecision { edge: self.ring.route(client_key), connection_reset: false }
            }
            RoutingScheme::Anycast => {
                let reset = rng.chance(self.flap_probability);
                // Anycast: routing, not DNS, picks the edge; a flap may move
                // the client to a different edge.
                let key = if reset { client_key.wrapping_add(1) } else { client_key };
                RouteDecision { edge: self.ring.route(key), connection_reset: reset }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_balanced() {
        let ring = HashRing::new(8, 64);
        let mut counts = vec![0u32; 8];
        for k in 0..8000u64 {
            let e = ring.route(k);
            assert_eq!(e, ring.route(k));
            counts[e.index()] += 1;
        }
        // Each of 8 edges should get roughly 1000 (±50%).
        for c in counts {
            assert!((500..1500).contains(&c), "imbalanced: {c}");
        }
    }

    #[test]
    fn ring_stability_under_growth() {
        // Consistent hashing: adding an edge should move only ~1/n of keys.
        let small = HashRing::new(8, 64);
        let large = HashRing::new(9, 64);
        let moved = (0..10_000u64)
            .filter(|k| {
                let a = small.route(*k);
                let b = large.route(*k);
                // Keys mapping to the *new* edge are expected to move.
                a != b && b != EdgeId::new(8)
            })
            .count();
        // Collisions between re-hashed points move a few extra keys; the
        // point is that nothing like a full reshuffle (≈ 8/9 of keys) happens.
        assert!(moved < 2_000, "too many keys moved: {moved}");
    }

    #[test]
    fn unicast_never_resets() {
        let r = Router::for_cdn(CdnName::A, 8);
        assert_eq!(r.scheme(), RoutingScheme::DnsUnicast);
        let mut rng = Rng::seed_from(1);
        for k in 0..2000 {
            assert!(!r.route_chunk(k, &mut rng).connection_reset);
        }
    }

    #[test]
    fn anycast_resets_rarely_but_nonzero() {
        let r = Router::for_cdn(CdnName::B, 8);
        assert_eq!(r.scheme(), RoutingScheme::Anycast);
        let mut rng = Rng::seed_from(2);
        let resets = (0..100_000)
            .filter(|k| r.route_chunk(*k, &mut rng).connection_reset)
            .count();
        // Expect ≈ 50 at p = 5e-4.
        assert!((10..200).contains(&resets), "resets {resets}");
    }

    #[test]
    #[should_panic(expected = "ring needs")]
    fn empty_ring_panics() {
        HashRing::new(0, 4);
    }
}

//! Edge caches: LRU caches in front of the origin.
//!
//! The playback simulator asks an edge for each chunk; a miss adds an
//! origin round trip to the chunk's time-to-first-byte and fills the cache.
//! Popularity-skewed catalogues therefore get realistic hit ratios without
//! any hand-tuned "cache hit probability" constant.

use crate::error::FetchError;
use std::collections::HashMap;
use vmp_core::units::Bytes;

/// Result of an edge lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the edge.
    Hit,
    /// Fetched from the origin and filled.
    Miss,
}

/// A single LRU edge cache keyed by opaque chunk keys.
pub struct EdgeCache {
    capacity: Bytes,
    used: Bytes,
    /// key → (size, last-use tick)
    entries: HashMap<u64, (Bytes, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    /// Cached global-registry handles; resolved once per cache so the
    /// per-chunk path stays lock-free.
    obs_hits: vmp_obs::Counter,
    obs_misses: vmp_obs::Counter,
    obs_evictions: vmp_obs::Counter,
}

impl std::fmt::Debug for EdgeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeCache")
            .field("capacity", &self.capacity)
            .field("used", &self.used)
            .field("entries", &self.entries.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl EdgeCache {
    /// Creates a cache with the given byte capacity.
    pub fn new(capacity: Bytes) -> EdgeCache {
        EdgeCache {
            capacity,
            used: Bytes::ZERO,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            obs_hits: vmp_obs::counter("cdn.cache_hits"),
            obs_misses: vmp_obs::counter("cdn.cache_misses"),
            obs_evictions: vmp_obs::counter("cdn.cache_evictions"),
        }
    }

    /// Looks up `key`; on a miss, admits it with `size`, evicting
    /// least-recently-used entries as needed. Objects larger than the whole
    /// cache are served origin-direct (counted as misses, never admitted).
    pub fn fetch(&mut self, key: u64, size: Bytes) -> CacheOutcome {
        self.clock += 1;
        if let Some((_, last_use)) = self.entries.get_mut(&key) {
            *last_use = self.clock;
            self.hits += 1;
            self.obs_hits.inc();
            return CacheOutcome::Hit;
        }
        self.misses += 1;
        self.obs_misses.inc();
        // Sampled 1-in-64: a full dataset produces millions of misses and
        // the ring only keeps the newest ~1k events anyway.
        if self.misses % 64 == 1 {
            vmp_obs::event(vmp_obs::EventKind::CacheMiss, format!("chunk key {key:#018x}"));
        }
        if size > self.capacity {
            return CacheOutcome::Miss;
        }
        while self.used + size > self.capacity {
            self.evict_lru();
        }
        self.entries.insert(key, (size, self.clock));
        self.used += size;
        CacheOutcome::Miss
    }

    fn evict_lru(&mut self) {
        if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, t))| *t) {
            if let Some((size, _)) = self.entries.remove(&victim) {
                self.used = self.used.saturating_sub(size);
                self.obs_evictions.inc();
            }
        } else {
            // Nothing to evict; avoid infinite loop (can't happen while
            // size <= capacity, defensive only).
            self.used = Bytes::ZERO;
        }
    }

    /// Bytes currently cached.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit ratio in [0, 1]; 0 when nothing was fetched.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drops every cached object (an injected edge-cache flush: node
    /// restart, config push, cache poisoning remediation). Hit/miss
    /// counters are preserved; subsequent fetches miss until refilled.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.used = Bytes::ZERO;
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A cluster of edges for one CDN (one edge per region index).
#[derive(Debug)]
pub struct EdgeCluster {
    edges: Vec<EdgeCache>,
}

impl EdgeCluster {
    /// Creates `n` edges of `capacity` each.
    pub fn new(n: usize, capacity: Bytes) -> EdgeCluster {
        EdgeCluster { edges: (0..n).map(|_| EdgeCache::new(capacity)).collect() }
    }

    /// Fetches from the edge serving `region_index`.
    ///
    /// A region index outside the cluster is a caller bug and returns
    /// [`FetchError::RegionOutOfRange`] — it is never silently wrapped
    /// modulo the cluster size, which used to mask routing-table mistakes.
    pub fn fetch(
        &mut self,
        region_index: usize,
        key: u64,
        size: Bytes,
    ) -> Result<CacheOutcome, FetchError> {
        let n = self.edges.len();
        if region_index >= n {
            return Err(FetchError::RegionOutOfRange { region: region_index, edges: n });
        }
        Ok(self.edges[region_index].fetch(key, size))
    }

    /// Flushes every edge in the cluster (an injected CDN-wide cache
    /// flush).
    pub fn flush_all(&mut self) {
        for e in &mut self.edges {
            e.flush();
        }
    }

    /// Aggregate hit ratio across edges.
    pub fn hit_ratio(&self) -> f64 {
        let (mut h, mut m) = (0u64, 0u64);
        for e in &self.edges {
            let (eh, em) = e.stats();
            h += eh;
            m += em;
        }
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the cluster has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut c = EdgeCache::new(Bytes(100));
        assert_eq!(c.fetch(1, Bytes(10)), CacheOutcome::Miss);
        assert_eq!(c.fetch(1, Bytes(10)), CacheOutcome::Hit);
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = EdgeCache::new(Bytes(30));
        c.fetch(1, Bytes(10));
        c.fetch(2, Bytes(10));
        c.fetch(3, Bytes(10));
        // Touch 1 so 2 becomes LRU.
        c.fetch(1, Bytes(10));
        // Admitting 4 evicts 2.
        c.fetch(4, Bytes(10));
        assert_eq!(c.fetch(2, Bytes(10)), CacheOutcome::Miss);
        assert_eq!(c.fetch(1, Bytes(10)), CacheOutcome::Hit);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = EdgeCache::new(Bytes(25));
        for k in 0..100 {
            c.fetch(k, Bytes(10));
            assert!(c.used() <= Bytes(25));
            assert!(c.len() <= 2);
        }
    }

    #[test]
    fn oversized_objects_bypass_cache() {
        let mut c = EdgeCache::new(Bytes(5));
        assert_eq!(c.fetch(1, Bytes(10)), CacheOutcome::Miss);
        assert_eq!(c.fetch(1, Bytes(10)), CacheOutcome::Miss);
        assert_eq!(c.used(), Bytes::ZERO);
    }

    #[test]
    fn skewed_workload_gets_high_hit_ratio() {
        let mut c = EdgeCache::new(Bytes(100));
        // 10 hot objects fit; 1000 accesses mostly to them.
        for i in 0..1000u64 {
            let key = if i % 10 < 9 { i % 10 } else { 100 + i };
            c.fetch(key, Bytes(10));
        }
        assert!(c.hit_ratio() > 0.8, "hit ratio {}", c.hit_ratio());
    }

    #[test]
    fn cluster_routes_by_region() {
        let mut cl = EdgeCluster::new(3, Bytes(100));
        cl.fetch(0, 1, Bytes(10)).unwrap();
        // Same key, different region → different edge → miss.
        assert_eq!(cl.fetch(1, 1, Bytes(10)), Ok(CacheOutcome::Miss));
        // Same region → hit.
        assert_eq!(cl.fetch(0, 1, Bytes(10)), Ok(CacheOutcome::Hit));
        assert_eq!(cl.len(), 3);
        assert!(cl.hit_ratio() > 0.0);
    }

    #[test]
    fn out_of_range_region_is_a_typed_error() {
        let mut cl = EdgeCluster::new(3, Bytes(100));
        assert_eq!(
            cl.fetch(3, 1, Bytes(10)),
            Err(FetchError::RegionOutOfRange { region: 3, edges: 3 })
        );
        // An empty cluster rejects every region instead of panicking.
        let mut empty = EdgeCluster::new(0, Bytes(100));
        assert_eq!(
            empty.fetch(0, 1, Bytes(10)),
            Err(FetchError::RegionOutOfRange { region: 0, edges: 0 })
        );
    }

    #[test]
    fn flush_forces_misses_but_keeps_stats() {
        let mut cl = EdgeCluster::new(2, Bytes(100));
        cl.fetch(0, 1, Bytes(10)).unwrap();
        assert_eq!(cl.fetch(0, 1, Bytes(10)), Ok(CacheOutcome::Hit));
        cl.flush_all();
        assert_eq!(cl.fetch(0, 1, Bytes(10)), Ok(CacheOutcome::Miss));
        // 1 hit, 2 misses survive the flush.
        assert!((cl.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }
}

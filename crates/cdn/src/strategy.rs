//! A publisher's multi-CDN configuration.
//!
//! §4.3: publishers use 1–5 CDNs; usage weights shift over time; and a
//! significant fraction of multi-CDN publishers segregate live and VoD
//! traffic by CDN (30% have at least one VoD-only CDN, 19% a live-only
//! CDN, one extreme publisher fully split the two).

use vmp_core::cdn::CdnName;
use vmp_core::content::ContentClass;
use vmp_core::error::CoreError;

/// Which content classes a CDN carries for this publisher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdnScope {
    /// Both live and VoD.
    All,
    /// VoD only.
    VodOnly,
    /// Live only.
    LiveOnly,
}

impl CdnScope {
    /// Whether the scope admits a content class.
    pub const fn admits(self, class: ContentClass) -> bool {
        match self {
            CdnScope::All => true,
            CdnScope::VodOnly => matches!(class, ContentClass::Vod),
            CdnScope::LiveOnly => matches!(class, ContentClass::Live),
        }
    }
}

/// One CDN in a publisher's rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdnAssignment {
    /// The CDN.
    pub cdn: CdnName,
    /// Traffic weight (relative, > 0).
    pub weight: f64,
    /// Content classes this CDN carries.
    pub scope: CdnScope,
}

/// A publisher's complete CDN strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct CdnStrategy {
    assignments: Vec<CdnAssignment>,
}

impl CdnStrategy {
    /// Creates a strategy; requires at least one assignment with positive
    /// weight, no duplicate CDNs, and at least one CDN admitting each class
    /// that any scope mentions.
    pub fn new(assignments: Vec<CdnAssignment>) -> Result<CdnStrategy, CoreError> {
        if assignments.is_empty() {
            return Err(CoreError::invalid("strategy needs at least one CDN"));
        }
        if assignments.iter().any(|a| a.weight <= 0.0 || !a.weight.is_finite()) {
            return Err(CoreError::invalid("CDN weights must be positive"));
        }
        let mut names: Vec<CdnName> = assignments.iter().map(|a| a.cdn).collect();
        names.sort();
        names.dedup();
        if names.len() != assignments.len() {
            return Err(CoreError::invalid("duplicate CDN in strategy"));
        }
        Ok(CdnStrategy { assignments })
    }

    /// Single-CDN strategy carrying everything.
    pub fn single(cdn: CdnName) -> CdnStrategy {
        CdnStrategy {
            assignments: vec![CdnAssignment { cdn, weight: 1.0, scope: CdnScope::All }],
        }
    }

    /// All assignments.
    pub fn assignments(&self) -> &[CdnAssignment] {
        &self.assignments
    }

    /// Every CDN in the strategy.
    pub fn cdns(&self) -> Vec<CdnName> {
        self.assignments.iter().map(|a| a.cdn).collect()
    }

    /// Number of CDNs (the §4.3 per-publisher count).
    pub fn cdn_count(&self) -> usize {
        self.assignments.len()
    }

    /// CDNs eligible for a content class, with weights.
    pub fn eligible(&self, class: ContentClass) -> Vec<CdnAssignment> {
        self.assignments
            .iter()
            .copied()
            .filter(|a| a.scope.admits(class))
            .collect()
    }

    /// Whether at least one CDN is VoD-only (a §4.3 segregation signal).
    pub fn has_vod_only(&self) -> bool {
        self.assignments.iter().any(|a| a.scope == CdnScope::VodOnly)
    }

    /// Whether at least one CDN is live-only.
    pub fn has_live_only(&self) -> bool {
        self.assignments.iter().any(|a| a.scope == CdnScope::LiveOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_strategy() {
        let s = CdnStrategy::single(CdnName::A);
        assert_eq!(s.cdn_count(), 1);
        assert_eq!(s.eligible(ContentClass::Live).len(), 1);
        assert!(!s.has_vod_only());
    }

    #[test]
    fn segregated_strategy() {
        let s = CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 2.0, scope: CdnScope::VodOnly },
            CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::LiveOnly },
            CdnAssignment { cdn: CdnName::C, weight: 1.0, scope: CdnScope::All },
        ])
        .unwrap();
        assert!(s.has_vod_only());
        assert!(s.has_live_only());
        let vod: Vec<CdnName> = s.eligible(ContentClass::Vod).iter().map(|a| a.cdn).collect();
        assert_eq!(vod, vec![CdnName::A, CdnName::C]);
        let live: Vec<CdnName> = s.eligible(ContentClass::Live).iter().map(|a| a.cdn).collect();
        assert_eq!(live, vec![CdnName::B, CdnName::C]);
    }

    #[test]
    fn invalid_strategies_rejected() {
        assert!(CdnStrategy::new(vec![]).is_err());
        assert!(CdnStrategy::new(vec![CdnAssignment {
            cdn: CdnName::A,
            weight: 0.0,
            scope: CdnScope::All
        }])
        .is_err());
        assert!(CdnStrategy::new(vec![
            CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::All },
            CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::All },
        ])
        .is_err());
    }

    #[test]
    fn scope_admission() {
        assert!(CdnScope::All.admits(ContentClass::Live));
        assert!(CdnScope::All.admits(ContentClass::Vod));
        assert!(!CdnScope::VodOnly.admits(ContentClass::Live));
        assert!(!CdnScope::LiveOnly.admits(ContentClass::Vod));
    }
}

//! Origin shield with request coalescing.
//!
//! During a synchronized live event every viewer wants the *same* chunk in
//! the *same* few seconds. Without protection, N edges (or N requests
//! racing through one cold edge) translate into N identical origin
//! fetches — the classic cache-stampede that melts an origin exactly when
//! it matters most. An origin shield sits between the edge tier and the
//! origin and *coalesces*: the first miss for a chunk becomes the single
//! origin fetch (the **leader**); every further miss for the same chunk
//! while that fetch is in flight waits on the leader and receives the
//! byte-identical payload (**coalesced**).
//!
//! The simulation replays sessions sequentially, so "in flight" is modeled
//! on the virtual clock: a leader fetch started at time `t` covers all
//! requests for the same key whose clock falls in the same coalescing
//! window, even though the sequential replay has long since completed the
//! leader's session. Callers must consult the shield *before* the edge
//! cache — in a sequential replay the edge fills instantly after the
//! leader, which would otherwise hide every coalescing opportunity.
//!
//! Payloads are deterministic digests of the chunk key, so tests can
//! assert the coalescing invariant the real system cares about: a
//! coalesced response is byte-identical to what a dedicated origin fetch
//! would have returned.

use std::collections::HashMap;
use vmp_core::units::Seconds;

/// How a chunk request resolved at the shield.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShieldOutcome {
    /// First miss in the window: this request performs the origin fetch.
    Leader,
    /// A leader fetch for the same chunk is in flight; this request waits
    /// and shares its payload instead of hitting the origin.
    Coalesced,
}

/// Per-CDN origin shield state.
#[derive(Debug)]
pub struct OriginShield {
    /// Width of the coalescing window (virtual seconds) — the modeled
    /// in-flight time of an origin fetch.
    window: Seconds,
    /// key → window bucket of the most recent leader fetch.
    inflight: HashMap<u64, u64>,
    origin_fetches: u64,
    coalesced: u64,
    obs_coalesced: vmp_obs::Counter,
}

impl OriginShield {
    /// A shield whose origin fetches are considered in flight for
    /// `window` virtual seconds.
    pub fn new(window: Seconds) -> OriginShield {
        OriginShield {
            window: Seconds(window.0.max(f64::MIN_POSITIVE)),
            inflight: HashMap::new(),
            origin_fetches: 0,
            coalesced: 0,
            obs_coalesced: vmp_obs::counter("cdn.coalesced"),
        }
    }

    /// Resolves a miss for `key` at virtual time `now`. Exactly one
    /// request per (key, window) becomes the [`ShieldOutcome::Leader`];
    /// the rest coalesce onto it.
    pub fn request(&mut self, key: u64, now: Seconds) -> ShieldOutcome {
        if self.coalesce(key, now) {
            ShieldOutcome::Coalesced
        } else {
            self.begin_fetch(key, now);
            ShieldOutcome::Leader
        }
    }

    /// Returns `true` (and counts a coalesced request) when a leader fetch
    /// for `key` is already in flight at `now`. Callers consult this
    /// *before* the edge cache: in a sequential replay the edge fills the
    /// instant the leader completes, which would otherwise hide every
    /// request that in real time would have raced the leader's fetch.
    pub fn coalesce(&mut self, key: u64, now: Seconds) -> bool {
        let bucket = (now.0.max(0.0) / self.window.0) as u64;
        if self.inflight.get(&key) == Some(&bucket) {
            self.coalesced += 1;
            self.obs_coalesced.inc();
            true
        } else {
            false
        }
    }

    /// Registers an origin fetch for `key` starting at `now`: this request
    /// is the leader that later misses in the same window coalesce onto.
    pub fn begin_fetch(&mut self, key: u64, now: Seconds) {
        let bucket = (now.0.max(0.0) / self.window.0) as u64;
        self.inflight.insert(key, bucket);
        self.origin_fetches += 1;
    }

    /// The payload the origin returns for `key` — a deterministic digest
    /// standing in for the chunk bytes. Leaders and coalesced followers
    /// both read their payload through this, which is what makes the
    /// byte-identity invariant checkable.
    pub fn payload(key: u64) -> u64 {
        // FNV-1a over the key's little-endian bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Origin fetches actually performed (leaders only).
    pub fn origin_fetches(&self) -> u64 {
        self.origin_fetches
    }

    /// Requests that coalesced onto an in-flight fetch.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_leader_per_key_per_window() {
        let mut shield = OriginShield::new(Seconds(4.0));
        assert_eq!(shield.request(42, Seconds(0.5)), ShieldOutcome::Leader);
        assert_eq!(shield.request(42, Seconds(1.0)), ShieldOutcome::Coalesced);
        assert_eq!(shield.request(42, Seconds(3.9)), ShieldOutcome::Coalesced);
        // New window → the fetch is no longer in flight → new leader.
        assert_eq!(shield.request(42, Seconds(4.1)), ShieldOutcome::Leader);
        assert_eq!(shield.origin_fetches(), 2);
        assert_eq!(shield.coalesced(), 2);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let mut shield = OriginShield::new(Seconds(4.0));
        assert_eq!(shield.request(1, Seconds(0.0)), ShieldOutcome::Leader);
        assert_eq!(shield.request(2, Seconds(0.0)), ShieldOutcome::Leader);
        assert_eq!(shield.coalesced(), 0);
    }

    #[test]
    fn payload_is_deterministic_and_key_dependent() {
        assert_eq!(OriginShield::payload(7), OriginShield::payload(7));
        assert_ne!(OriginShield::payload(7), OriginShield::payload(8));
    }

    #[test]
    fn storm_of_simultaneous_misses_costs_one_origin_fetch() {
        let mut shield = OriginShield::new(Seconds(4.0));
        let leaders = (0..500)
            .filter(|_| shield.request(99, Seconds(2.0)) == ShieldOutcome::Leader)
            .count();
        assert_eq!(leaders, 1);
        assert_eq!(shield.origin_fetches(), 1);
        assert_eq!(shield.coalesced(), 499);
    }
}

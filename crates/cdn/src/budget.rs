//! Shared per-CDN retry budget.
//!
//! Per-session exponential backoff bounds how hard *one* player hammers a
//! failing CDN, but a flash crowd multiplies that by tens of thousands of
//! sessions retrying in lockstep — a retry storm that turns a brownout
//! into an outage. The industry fix (SRE retry budgets, adaptive retry
//! throttling in AWS SDKs) is a *shared* ledger: retries across all
//! sessions against one CDN draw from a common token bucket, and when the
//! bucket is dry a would-be retry converts into an immediate failover
//! instead of another request at the struggling backend.
//!
//! [`RetryBudget`] is that ledger on the virtual clock. Tokens refill at a
//! fixed rate but only on *forward* progress (the high-water mark of
//! observed virtual time), so the sequential session replay — which visits
//! timestamps out of global order — cannot mint extra tokens by revisiting
//! the past. That gives the hard bound the proptests pin down: total
//! granted retries ≤ `capacity + refill_per_sec × horizon` regardless of
//! how many sessions retry or in what order.

use parking_lot::Mutex;
use std::collections::HashMap;
use vmp_core::cdn::CdnName;
use vmp_core::units::Seconds;

/// Tuning for the shared retry budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetConfig {
    /// Burst size: tokens available instantly at the start of an incident.
    pub capacity: f64,
    /// Steady-state retry rate the CDN is willing to absorb (tokens per
    /// virtual second).
    pub refill_per_sec: f64,
}

impl Default for BudgetConfig {
    fn default() -> BudgetConfig {
        BudgetConfig { capacity: 100.0, refill_per_sec: 2.0 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    /// High-water mark of observed virtual time; refill only moves forward.
    last: Seconds,
}

/// A shared token bucket of retries per CDN.
///
/// Thread-safe and cheaply cloneable via `&self` methods behind a mutex,
/// mirroring [`Broker`](crate::broker::Broker)'s interior-mutability
/// style so one budget can be shared across a whole session population.
pub struct RetryBudget {
    config: BudgetConfig,
    buckets: Mutex<HashMap<CdnName, Bucket>>,
    granted: Mutex<u64>,
    denied: Mutex<u64>,
    obs_exhausted: vmp_obs::Counter,
}

impl std::fmt::Debug for RetryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryBudget")
            .field("config", &self.config)
            .field("granted", &*self.granted.lock())
            .field("denied", &*self.denied.lock())
            .finish()
    }
}

impl RetryBudget {
    /// A budget with the given tuning (capacity and refill clamped to be
    /// non-negative).
    pub fn new(config: BudgetConfig) -> RetryBudget {
        RetryBudget {
            config: BudgetConfig {
                capacity: config.capacity.max(0.0),
                refill_per_sec: config.refill_per_sec.max(0.0),
            },
            buckets: Mutex::new(HashMap::new()),
            granted: Mutex::new(0),
            denied: Mutex::new(0),
            obs_exhausted: vmp_obs::counter("cdn.retry_budget_exhausted"),
        }
    }

    /// Asks the shared ledger for permission to retry against `cdn` at
    /// virtual time `now`. `true` spends one token; `false` means the
    /// budget is exhausted and the caller must fail over immediately
    /// instead of retrying.
    pub fn try_spend(&self, cdn: CdnName, now: Seconds) -> bool {
        let mut buckets = self.buckets.lock();
        let bucket = buckets
            .entry(cdn)
            .or_insert(Bucket { tokens: self.config.capacity, last: Seconds(0.0) });
        if now.0 > bucket.last.0 {
            bucket.tokens = (bucket.tokens + (now.0 - bucket.last.0) * self.config.refill_per_sec)
                .min(self.config.capacity);
            bucket.last = now;
        }
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            *self.granted.lock() += 1;
            true
        } else {
            *self.denied.lock() += 1;
            self.obs_exhausted.inc();
            vmp_obs::session_trace::emit(
                vmp_obs::session_trace::TraceEventKind::RetryDenied,
                now.0,
                cdn.dense_index() as u8,
                0,
                0.0,
            );
            false
        }
    }

    /// Retries granted across all CDNs.
    pub fn granted(&self) -> u64 {
        *self.granted.lock()
    }

    /// Retries denied (converted to immediate failover) across all CDNs.
    pub fn denied(&self) -> u64 {
        *self.denied.lock()
    }

    /// The hard upper bound on grants for one CDN over a run whose
    /// virtual clock never exceeds `horizon`: the initial burst plus
    /// everything the refill rate can mint. Independent of session count
    /// and arrival order.
    pub fn max_grants(&self, horizon: Seconds) -> u64 {
        (self.config.capacity + self.config.refill_per_sec * horizon.0.max(0.0)).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(capacity: f64, refill: f64) -> RetryBudget {
        RetryBudget::new(BudgetConfig { capacity, refill_per_sec: refill })
    }

    #[test]
    fn burst_is_bounded_by_capacity() {
        let b = budget(5.0, 0.0);
        let granted = (0..50).filter(|_| b.try_spend(CdnName::A, Seconds(0.0))).count();
        assert_eq!(granted, 5);
        assert_eq!(b.denied(), 45);
    }

    #[test]
    fn refill_only_moves_forward() {
        let b = budget(1.0, 1.0);
        assert!(b.try_spend(CdnName::A, Seconds(10.0)));
        assert!(!b.try_spend(CdnName::A, Seconds(10.0)));
        // A session earlier in the virtual timeline cannot rewind the
        // clock to mint tokens.
        assert!(!b.try_spend(CdnName::A, Seconds(3.0)));
        // Forward progress refills.
        assert!(b.try_spend(CdnName::A, Seconds(11.0)));
    }

    #[test]
    fn budgets_are_per_cdn() {
        let b = budget(1.0, 0.0);
        assert!(b.try_spend(CdnName::A, Seconds(0.0)));
        assert!(!b.try_spend(CdnName::A, Seconds(0.0)));
        assert!(b.try_spend(CdnName::B, Seconds(0.0)), "CDN B has its own bucket");
    }

    #[test]
    fn grants_respect_the_analytic_bound() {
        let b = budget(10.0, 0.5);
        let horizon = Seconds(100.0);
        let mut granted = 0u64;
        for i in 0..10_000u64 {
            // Scatter timestamps non-monotonically across the horizon.
            let t = Seconds(((i * 37) % 101) as f64);
            if b.try_spend(CdnName::A, t) {
                granted += 1;
            }
        }
        assert!(granted <= b.max_grants(horizon), "{granted} > bound {}", b.max_grants(horizon));
        assert_eq!(granted, b.granted());
    }
}

//! Typed delivery errors.
//!
//! The happy-path simulator never failed a fetch; under fault injection the
//! CDN layer reports *why* a chunk could not be served, so the session layer
//! can choose between retrying, degrading, and escalating to broker
//! failover.

use std::fmt;
use vmp_core::cdn::CdnName;

/// Why a chunk (or manifest) fetch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// Caller asked for a region index outside the edge cluster. This is a
    /// caller bug, not a simulated incident; it is never masked by modulo
    /// wrapping.
    RegionOutOfRange {
        /// The requested region index.
        region: usize,
        /// The number of edges in the cluster.
        edges: usize,
    },
    /// The CDN is inside a scheduled outage window.
    Outage {
        /// The unavailable CDN.
        cdn: CdnName,
    },
    /// The edge missed and the origin fetch failed (error burst).
    OriginUnavailable {
        /// The CDN whose origin errored.
        cdn: CdnName,
    },
    /// The fetch exceeded the player's chunk timeout.
    Timeout {
        /// The CDN that timed out.
        cdn: CdnName,
    },
    /// The manifest fetch failed (fault window or unreachable CDN).
    ManifestUnavailable {
        /// The CDN that failed to serve the manifest.
        cdn: CdnName,
    },
    /// Admission control shed the request: the edge was over its capacity
    /// for the accounting bucket and this request lost the priority
    /// contest (new joins are shed before in-progress sessions).
    Shed {
        /// The CDN whose edge shed the request.
        cdn: CdnName,
    },
}

impl FetchError {
    /// Stable lowercase label used in metrics and event details.
    pub fn label(&self) -> &'static str {
        match self {
            FetchError::RegionOutOfRange { .. } => "region_out_of_range",
            FetchError::Outage { .. } => "outage",
            FetchError::OriginUnavailable { .. } => "origin_unavailable",
            FetchError::Timeout { .. } => "timeout",
            FetchError::ManifestUnavailable { .. } => "manifest_unavailable",
            FetchError::Shed { .. } => "shed",
        }
    }

    /// Compact error class for session-trace events (`code` field of a
    /// `chunk_error` / `fatal` record); [`label`](Self::label) is the
    /// human-readable form of the same enumeration.
    pub fn trace_code(&self) -> u32 {
        match self {
            FetchError::RegionOutOfRange { .. } => 0,
            FetchError::Outage { .. } => 1,
            FetchError::OriginUnavailable { .. } => 2,
            FetchError::Timeout { .. } => 3,
            FetchError::ManifestUnavailable { .. } => 4,
            FetchError::Shed { .. } => 5,
        }
    }

    /// The CDN the failure is attributed to, when there is one.
    pub fn cdn(&self) -> Option<CdnName> {
        match self {
            FetchError::RegionOutOfRange { .. } => None,
            FetchError::Outage { cdn }
            | FetchError::OriginUnavailable { cdn }
            | FetchError::Timeout { cdn }
            | FetchError::ManifestUnavailable { cdn }
            | FetchError::Shed { cdn } => Some(*cdn),
        }
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::RegionOutOfRange { region, edges } => {
                write!(f, "region index {region} out of range for {edges}-edge cluster")
            }
            FetchError::Outage { cdn } => write!(f, "{cdn:?} is in an outage window"),
            FetchError::OriginUnavailable { cdn } => {
                write!(f, "{cdn:?} origin fetch failed during an error burst")
            }
            FetchError::Timeout { cdn } => write!(f, "chunk fetch from {cdn:?} timed out"),
            FetchError::ManifestUnavailable { cdn } => {
                write!(f, "manifest fetch from {cdn:?} failed")
            }
            FetchError::Shed { cdn } => {
                write!(f, "{cdn:?} edge shed the request under overload")
            }
        }
    }
}

impl std::error::Error for FetchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_cdn_attribution() {
        let e = FetchError::Outage { cdn: CdnName::A };
        assert_eq!(e.label(), "outage");
        assert_eq!(e.cdn(), Some(CdnName::A));
        let r = FetchError::RegionOutOfRange { region: 7, edges: 3 };
        assert_eq!(r.cdn(), None);
        assert!(r.to_string().contains("out of range"));
    }
}

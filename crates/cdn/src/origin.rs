//! CDN origin storage and the §6 redundancy analysis.
//!
//! Publishers proactively push packaged chunks to a CDN origin server which
//! serves cache misses from edges (§6, citing the Facebook photo-caching
//! architecture). When several publishers (an owner and its syndicators)
//! push *the same underlying content* at the same or similar bitrates, the
//! origin stores redundant bytes. [`OriginStore::dedup_savings`] quantifies
//! what a tolerance-based dedup would save, and
//! [`OriginStore::integrated_savings`] what full management-plane
//! integration (syndicators reusing the owner's copies) would save —
//! reproducing Fig 18.

use std::collections::BTreeMap;
use vmp_core::cdn::CdnName;
use vmp_core::ids::{PublisherId, VideoId};
use vmp_core::units::{Bytes, Kbps};

/// Identity of the *underlying* content, independent of who distributes it:
/// the owner and the owner's video ID. Syndicated copies share the
/// [`ContentKey`] of the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentKey {
    /// The content owner.
    pub owner: PublisherId,
    /// The owner's video ID for the title.
    pub video: VideoId,
}

/// One stored encoding of one title by one publisher.
#[derive(Debug, Clone, PartialEq)]
pub struct OriginEntry {
    /// Who pushed it (owner or a syndicator).
    pub publisher: PublisherId,
    /// What content it is a copy of.
    pub content: ContentKey,
    /// Encoded video bitrate of this copy.
    pub bitrate: Kbps,
    /// Stored bytes (chunks + container overhead).
    pub bytes: Bytes,
}

/// The origin storage ledger of a single CDN.
///
/// ```
/// use vmp_cdn::origin::{ContentKey, OriginEntry, OriginStore};
/// use vmp_core::cdn::CdnName;
/// use vmp_core::ids::{PublisherId, VideoId};
/// use vmp_core::units::{Bytes, Kbps};
///
/// let mut store = OriginStore::new(CdnName::A);
/// let content = ContentKey { owner: PublisherId::new(0), video: VideoId::new(1) };
/// // The owner and a syndicator both push a ~1 Mbps copy of the same title.
/// store.push(OriginEntry { publisher: PublisherId::new(0), content, bitrate: Kbps(1000), bytes: Bytes(100) });
/// store.push(OriginEntry { publisher: PublisherId::new(7), content, bitrate: Kbps(1040), bytes: Bytes(104) });
/// assert_eq!(store.dedup_savings(0.0), Bytes(0));    // not byte-identical
/// assert_eq!(store.dedup_savings(0.05), Bytes(100)); // within 5%: keep the larger
/// assert_eq!(store.integrated_savings(), Bytes(104)); // drop the syndicator copy
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OriginStore {
    cdn: Option<CdnName>,
    entries: Vec<OriginEntry>,
}

impl OriginStore {
    /// Creates an empty store for a CDN.
    pub fn new(cdn: CdnName) -> OriginStore {
        OriginStore { cdn: Some(cdn), entries: Vec::new() }
    }

    /// The CDN this store belongs to.
    pub fn cdn(&self) -> Option<CdnName> {
        self.cdn
    }

    /// Registers a pushed encoding.
    pub fn push(&mut self, entry: OriginEntry) {
        vmp_obs::counter("cdn.origin_pushes").inc();
        vmp_obs::counter("cdn.origin_bytes_pushed").add(entry.bytes.0);
        self.entries.push(entry);
    }

    /// All entries.
    pub fn entries(&self) -> &[OriginEntry] {
        &self.entries
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> Bytes {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Bytes attributable to one publisher.
    pub fn publisher_bytes(&self, publisher: PublisherId) -> Bytes {
        self.entries
            .iter()
            .filter(|e| e.publisher == publisher)
            .map(|e| e.bytes)
            .sum()
    }

    /// Savings if the CDN deduplicates copies of the same content whose
    /// bitrates are within `tolerance` (relative, e.g. 0.05 = 5%).
    ///
    /// Clustering per content key is single-linkage over the sorted
    /// bitrates: entries whose *adjacent* gap is within tolerance join one
    /// cluster; within a cluster only one copy — the largest, to preserve
    /// the best quality — is kept. Single linkage makes savings provably
    /// monotone in the tolerance (raising it can only merge clusters, and a
    /// merge never reduces the saved bytes), which anchored greedy
    /// clustering does not guarantee. `tolerance = 0` merges only
    /// exactly-equal bitrates.
    pub fn dedup_savings(&self, tolerance: f64) -> Bytes {
        assert!((0.0..=1.0).contains(&tolerance), "tolerance must be in [0,1]");
        let mut by_content: BTreeMap<ContentKey, Vec<&OriginEntry>> = BTreeMap::new();
        for e in &self.entries {
            by_content.entry(e.content).or_default().push(e);
        }
        let mut saved = Bytes::ZERO;
        for (_, mut group) in by_content {
            group.sort_by_key(|e| e.bitrate);
            let mut i = 0;
            while i < group.len() {
                // Cluster [i, j): chain while adjacent gaps stay in tolerance.
                let mut j = i + 1;
                while j < group.len()
                    && group[j - 1].bitrate.relative_gap(group[j].bitrate) <= tolerance
                {
                    j += 1;
                }
                if j - i > 1 {
                    let cluster = &group[i..j];
                    let total: Bytes = cluster.iter().map(|e| e.bytes).sum();
                    let keep = cluster.iter().map(|e| e.bytes).max().expect("non-empty");
                    saved += total.saturating_sub(keep);
                }
                i = j;
            }
        }
        saved
    }

    /// Savings under *integrated syndication*: every copy pushed by a
    /// publisher other than the content's owner is dropped (syndicators use
    /// the owner's manifest/CDN copies via API or app integration, §6).
    pub fn integrated_savings(&self) -> Bytes {
        self.entries
            .iter()
            .filter(|e| e.publisher != e.content.owner)
            .map(|e| e.bytes)
            .sum()
    }

    /// Savings as a percentage of total storage (0–100).
    pub fn savings_percent(&self, saved: Bytes) -> f64 {
        let total = self.total_bytes();
        if total.0 == 0 {
            0.0
        } else {
            100.0 * saved.0 as f64 / total.0 as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ContentKey {
        ContentKey { owner: PublisherId::new(0), video: VideoId::new(1) }
    }

    fn entry(publisher: u32, bitrate: u32, bytes: u64) -> OriginEntry {
        OriginEntry {
            publisher: PublisherId::new(publisher),
            content: key(),
            bitrate: Kbps(bitrate),
            bytes: Bytes(bytes),
        }
    }

    #[test]
    fn exact_duplicates_dedup_at_zero_tolerance() {
        let mut store = OriginStore::new(CdnName::A);
        store.push(entry(0, 1000, 100));
        store.push(entry(1, 1000, 100));
        store.push(entry(2, 1000, 100));
        assert_eq!(store.dedup_savings(0.0), Bytes(200));
        assert_eq!(store.total_bytes(), Bytes(300));
        assert!((store.savings_percent(Bytes(200)) - 66.666).abs() < 0.01);
    }

    #[test]
    fn nearby_bitrates_dedup_only_with_tolerance() {
        let mut store = OriginStore::new(CdnName::A);
        store.push(entry(0, 1000, 100));
        store.push(entry(1, 1040, 104)); // 4% above
        assert_eq!(store.dedup_savings(0.0), Bytes::ZERO);
        assert_eq!(store.dedup_savings(0.05), Bytes(100)); // keeps the larger copy
    }

    #[test]
    fn different_content_never_dedups() {
        let mut store = OriginStore::new(CdnName::A);
        store.push(entry(0, 1000, 100));
        store.push(OriginEntry {
            publisher: PublisherId::new(1),
            content: ContentKey { owner: PublisherId::new(9), video: VideoId::new(2) },
            bitrate: Kbps(1000),
            bytes: Bytes(100),
        });
        assert_eq!(store.dedup_savings(0.10), Bytes::ZERO);
    }

    #[test]
    fn savings_monotone_in_tolerance() {
        let mut store = OriginStore::new(CdnName::B);
        for (p, b) in [(0u32, 400u32), (1, 420), (2, 460), (0, 800), (1, 880), (2, 1200)] {
            store.push(entry(p, b, b as u64));
        }
        let s0 = store.dedup_savings(0.0);
        let s5 = store.dedup_savings(0.05);
        let s10 = store.dedup_savings(0.10);
        let s50 = store.dedup_savings(0.50);
        assert!(s0 <= s5 && s5 <= s10 && s10 <= s50);
        assert!(s50 < store.total_bytes());
    }

    #[test]
    fn integrated_drops_all_syndicator_copies() {
        let mut store = OriginStore::new(CdnName::A);
        store.push(entry(0, 1000, 100)); // owner copy (owner id 0)
        store.push(entry(0, 2000, 200));
        store.push(entry(1, 950, 95)); // syndicator copies
        store.push(entry(2, 3000, 300));
        assert_eq!(store.integrated_savings(), Bytes(395));
        // Integrated beats any dedup tolerance here.
        assert!(store.integrated_savings() >= store.dedup_savings(0.10));
    }

    #[test]
    fn empty_store_is_safe() {
        let store = OriginStore::new(CdnName::E);
        assert_eq!(store.total_bytes(), Bytes::ZERO);
        assert_eq!(store.dedup_savings(0.1), Bytes::ZERO);
        assert_eq!(store.integrated_savings(), Bytes::ZERO);
        assert_eq!(store.savings_percent(Bytes::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn invalid_tolerance_panics() {
        OriginStore::new(CdnName::A).dedup_savings(1.5);
    }
}

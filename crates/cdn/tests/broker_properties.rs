//! Property tests for the broker's circuit-breaker health gate: a CDN
//! whose breaker is open must never be selected — by initial selection or
//! by failover — while its quarantine lasts, for arbitrary breaker
//! configurations and RNG seeds.

use proptest::prelude::*;
use vmp_cdn::broker::{Broker, BrokerPolicy};
use vmp_cdn::strategy::{CdnAssignment, CdnScope, CdnStrategy};
use vmp_core::cdn::CdnName;
use vmp_core::content::ContentClass;
use vmp_core::units::Seconds;
use vmp_faults::BreakerConfig;
use vmp_stats::Rng;

fn three_way_strategy() -> CdnStrategy {
    CdnStrategy::new(vec![
        CdnAssignment { cdn: CdnName::A, weight: 1.0, scope: CdnScope::All },
        CdnAssignment { cdn: CdnName::B, weight: 1.0, scope: CdnScope::All },
        CdnAssignment { cdn: CdnName::C, weight: 1.0, scope: CdnScope::All },
    ])
    .expect("valid strategy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quarantined_cdn_is_never_selected_while_open(
        seed in 0u64..100_000,
        threshold in 1u32..5,
        cooldown in 10.0f64..1000.0,
        draws in 1usize..40,
    ) {
        let strategy = three_way_strategy();
        let broker = Broker::with_breaker(
            BrokerPolicy::Weighted,
            BreakerConfig { failure_threshold: threshold, cooldown: Seconds(cooldown), ..BreakerConfig::default() },
        );
        for _ in 0..threshold {
            broker.record_fetch_failure(CdnName::A, Seconds::ZERO);
        }
        prop_assert!(broker.quarantined(CdnName::A, Seconds::ZERO));

        let mut rng = Rng::seed_from(seed);
        for i in 0..draws {
            // Probe times strictly inside the quarantine window.
            let t = Seconds(cooldown * 0.99 * (i as f64 / draws as f64));
            let picked = broker.select_at(&strategy, ContentClass::Vod, t, &mut rng);
            prop_assert!(picked.is_some());
            prop_assert_ne!(picked, Some(CdnName::A), "selected a quarantined CDN at t={}", t.0);

            let failover = broker.failover_at(&strategy, ContentClass::Vod, CdnName::B, t, &mut rng);
            prop_assert!(failover.is_some());
            prop_assert_ne!(
                failover,
                Some(CdnName::A),
                "failed over onto a quarantined CDN at t={}", t.0
            );
        }

        // After the cooldown the breaker half-opens and A is eligible
        // again: probing traffic must be able to reach it eventually.
        prop_assert!(!broker.quarantined(CdnName::A, Seconds(cooldown + 1.0)));
    }
}

//! Property tests for the surge-protection layer.
//!
//! Two invariants the `live_event` scenario leans on, checked for
//! arbitrary storms rather than one seed:
//!
//! 1. **The retry budget bounds total grants analytically.** However many
//!    sessions retry, however their timestamps interleave (including
//!    out-of-order and duplicate instants), the grants a CDN hands out
//!    never exceed `capacity + refill_per_sec × horizon` — the
//!    [`RetryBudget::max_grants`] bound.
//! 2. **Coalescing is invisible in the bytes.** A follower coalesced onto
//!    an in-flight origin fetch observes a payload byte-identical to what
//!    it would have fetched alone; coalescing changes who talks to the
//!    origin, never what is served.

use proptest::prelude::*;
use vmp_cdn::budget::{BudgetConfig, RetryBudget};
use vmp_cdn::shield::{OriginShield, ShieldOutcome};
use vmp_core::cdn::CdnName;
use vmp_core::units::Seconds;
use vmp_stats::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A synthetic retry storm: `sessions` concurrent sessions each demand
    /// `per_session` retries at RNG-scattered (unsorted) instants across
    /// the horizon. Total grants must respect the analytic bound no matter
    /// how much demand exceeds it.
    #[test]
    fn retry_grants_bounded_by_budget_regardless_of_session_count(
        seed in 0u64..100_000,
        sessions in 1usize..400,
        per_session in 1usize..12,
        capacity in 1.0f64..200.0,
        refill in 0.0f64..5.0,
        horizon in 1.0f64..2000.0,
    ) {
        let budget = RetryBudget::new(BudgetConfig { capacity, refill_per_sec: refill });
        let mut rng = Rng::seed_from(seed);
        let mut granted = 0u64;
        let mut demanded = 0u64;
        for _ in 0..sessions {
            for _ in 0..per_session {
                let at = Seconds(rng.f64() * horizon);
                demanded += 1;
                if budget.try_spend(CdnName::A, at) {
                    granted += 1;
                }
            }
        }
        let bound = budget.max_grants(Seconds(horizon));
        prop_assert!(
            granted <= bound,
            "granted {granted} of {demanded} demanded exceeds bound {bound} \
             (capacity {capacity}, refill {refill}/s, horizon {horizon}s)"
        );
        prop_assert_eq!(granted, budget.granted());
        prop_assert_eq!(demanded - granted, budget.denied());
    }

    /// Denied retries stay denied: the budget's accounting is conserved
    /// across CDNs (per-CDN buckets never lend tokens to each other).
    #[test]
    fn budget_buckets_are_per_cdn(
        seed in 0u64..100_000,
        demands in 1usize..200,
        capacity in 1.0f64..50.0,
    ) {
        let budget = RetryBudget::new(BudgetConfig { capacity, refill_per_sec: 0.0 });
        let mut rng = Rng::seed_from(seed);
        let cdns = [CdnName::A, CdnName::B, CdnName::C];
        let mut per_cdn = [0u64; 3];
        for _ in 0..demands {
            let which = (rng.f64() * 3.0) as usize % 3;
            if budget.try_spend(cdns[which], Seconds::ZERO) {
                per_cdn[which] += 1;
            }
        }
        let each = capacity.ceil() as u64;
        for (i, g) in per_cdn.iter().enumerate() {
            prop_assert!(
                *g <= each,
                "{:?} granted {g} from a capacity-{each} bucket with no refill",
                cdns[i]
            );
        }
    }

    /// N simultaneous misses for one chunk coalesce onto one origin fetch,
    /// and every follower sees exactly the leader's payload — which is the
    /// payload an uncoalesced solo fetch of the same key returns.
    #[test]
    fn coalesced_payloads_are_byte_identical_to_uncoalesced(
        key in 0u64..1_000_000_000_000,
        followers in 1u64..200,
        window in 0.1f64..30.0,
        at in 0.0f64..10_000.0,
    ) {
        let mut shield = OriginShield::new(Seconds(window));
        let now = Seconds(at);
        prop_assert_eq!(shield.request(key, now), ShieldOutcome::Leader);
        let leader_payload = OriginShield::payload(key);
        for _ in 0..followers {
            prop_assert_eq!(shield.request(key, now), ShieldOutcome::Coalesced);
            prop_assert_eq!(OriginShield::payload(key), leader_payload);
        }
        prop_assert_eq!(shield.origin_fetches(), 1);
        prop_assert_eq!(shield.coalesced(), followers);

        // An independent shield that never coalesced serves the same bytes.
        let mut solo = OriginShield::new(Seconds(window));
        prop_assert_eq!(solo.request(key, now), ShieldOutcome::Leader);
        prop_assert_eq!(OriginShield::payload(key), leader_payload);
    }

    /// Requests outside the in-flight window are fresh leaders, not stale
    /// coalesces: the shield never serves a payload from a fetch that has
    /// already landed.
    #[test]
    fn coalescing_never_crosses_the_inflight_window(
        key in 0u64..1_000_000_000_000,
        window in 0.1f64..10.0,
        gap_factor in 1.1f64..20.0,
    ) {
        let mut shield = OriginShield::new(Seconds(window));
        prop_assert_eq!(shield.request(key, Seconds::ZERO), ShieldOutcome::Leader);
        let later = Seconds(window * gap_factor);
        prop_assert_eq!(shield.request(key, later), ShieldOutcome::Leader);
        prop_assert_eq!(shield.origin_fetches(), 2);
    }
}

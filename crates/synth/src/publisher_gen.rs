//! Per-publisher static profiles and per-snapshot management planes.
//!
//! A profile holds everything that persists across the study — size, kind,
//! syndication role, and the latent uniform draws that make adoption
//! *monotone* (a publisher whose draw is below DASH's rising adoption curve
//! at time `t` stays below it for all later `t`, so support never flaps).
//! [`PublisherProfile::plane`] materializes the management-plane
//! configuration at one snapshot.

use vmp_cdn::strategy::{CdnAssignment, CdnScope, CdnStrategy};
use vmp_core::cdn::CdnName;
use vmp_core::ids::PublisherId;
use vmp_core::ladder::BitrateLadder;
use vmp_core::platform::Platform;
use vmp_core::protocol::StreamingProtocol;
use vmp_core::publisher::{Publisher, PublisherKind, SyndicationRole};
use vmp_core::time::SnapshotId;
use vmp_core::units::Kbps;
use vmp_packaging::ladder::LadderSpec;
use vmp_stats::{Discrete, Distribution, Rng};

use crate::trends;

/// Static profile of one publisher.
#[derive(Debug, Clone)]
pub struct PublisherProfile {
    /// Identity (ID, editorial kind, syndication role).
    pub publisher: Publisher,
    /// Daily view-hours at the end of the study.
    pub vh_day_final: f64,
    /// Normalized size in [0, 1] across the population's decades.
    pub size01: f64,
    /// log10(view-hours / X): decades above the anchor.
    pub size_decades: f64,
    /// Whether this is one of the few large DASH-first publishers.
    pub dash_first: bool,
    /// Latent adoption draws, one per protocol (indexed by position in
    /// `StreamingProtocol::ALL`).
    protocol_u: [f64; 6],
    /// Latent adoption draws per platform.
    platform_u: [f64; 5],
    /// Fixed CDN rotation (ordered); the first `n(t)` are active.
    cdn_rotation: Vec<CdnName>,
    /// Jitter for the CDN count.
    cdn_jitter: f64,
    /// Index into the rotation of a VoD-only CDN, if segregating.
    vod_only_slot: Option<usize>,
    /// Index into the rotation of a live-only CDN, if segregating.
    live_only_slot: Option<usize>,
    /// Jitter for SDK version windows.
    sdk_jitter: f64,
    /// Per-platform usage jitter (multiplies the global view-share trend).
    platform_mix_jitter: [f64; 5],
    /// The publisher's ladder spec (top bitrate scales with size).
    ladder_spec: LadderSpec,
}

/// Management-plane configuration of one publisher at one snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotPlane {
    /// The snapshot this plane describes.
    pub snapshot: SnapshotId,
    /// Protocols the publisher packages for (never empty).
    pub protocols: Vec<StreamingProtocol>,
    /// Platforms with a maintained player (never empty).
    pub platforms: Vec<Platform>,
    /// Multi-CDN strategy with per-CDN weights and scopes.
    pub strategy: CdnStrategy,
    /// The publisher's default bitrate ladder.
    pub ladder: BitrateLadder,
    /// Catalogue size (distinct video IDs).
    pub titles: u64,
    /// Daily view-hours at this point of the study.
    pub vh_day: f64,
    /// SDK versions supported per SDK kind (legacy-device window).
    pub sdk_window: usize,
    /// Relative per-view platform mix (aligned with `platforms`).
    pub platform_weights: Vec<f64>,
}

impl SnapshotPlane {
    /// The §5 *unique SDKs* measure: one code base per (SDK kind, version)
    /// across the app devices of supported platforms, plus one per browser
    /// player technology.
    pub fn unique_sdk_count(&self) -> usize {
        use std::collections::BTreeSet;
        let mut kinds = BTreeSet::new();
        let mut browser_players = 0usize;
        for device in vmp_core::device::DeviceModel::ALL {
            if !self.platforms.contains(&device.platform()) {
                continue;
            }
            match device {
                vmp_core::device::DeviceModel::DesktopBrowser(_) => browser_players += 1,
                d => {
                    kinds.insert(vmp_core::sdk::SdkKind::for_device(d));
                }
            }
        }
        kinds.len() * self.sdk_window + browser_players
    }

    /// The §5 *protocol-titles* measure.
    pub fn protocol_titles(&self) -> u64 {
        self.titles * self.protocols.len() as u64
    }
}

impl PublisherProfile {
    /// Generates a profile from the population RNG.
    pub fn generate(id: PublisherId, rng: &mut Rng) -> PublisherProfile {
        // Size: pick a decade bucket, then log-uniform within it.
        let bucket_dist = Discrete::new(&trends::SIZE_BUCKET_WEIGHTS).expect("static weights");
        let bucket = bucket_dist.sample(rng);
        // Bucket 0 is [X/10, X); bucket k ≥ 1 is [10^(k-1) X, 10^k X).
        let decade_lo = bucket as f64 - 1.0;
        let size_decades = decade_lo + rng.f64();
        let vh_day_final = trends::X_VIEW_HOURS * 10f64.powf(size_decades);
        let size01 = ((size_decades + 1.0) / trends::SIZE_DECADES as f64).clamp(0.0, 1.0);

        let kind = *rng.choose(&[
            PublisherKind::SubscriptionVod,
            PublisherKind::Sports,
            PublisherKind::News,
            PublisherKind::OnDemand,
            PublisherKind::Broadcaster,
        ]);
        // Roles: ~55% owner-only, 25% full syndicators, 20% mixed.
        let role = match rng.f64() {
            x if x < 0.55 => SyndicationRole::OwnerOnly,
            x if x < 0.80 => SyndicationRole::FullSyndicator,
            _ => SyndicationRole::Mixed,
        };

        let mut protocol_u = [0.0; 6];
        for u in &mut protocol_u {
            *u = rng.f64();
        }
        let mut platform_u = [0.0; 5];
        for u in &mut platform_u {
            *u = rng.f64();
        }

        // CDN rotation: weighted sampling without replacement over all 36.
        let cdn_rotation = sample_cdn_rotation(rng);
        let multi = cdn_rotation.len() > 1;
        let serves_live = kind.live_share() > 0.0;
        // Segregated CDNs sit on the earliest secondary slots so that the
        // policy is actually active for 2-3-CDN publishers (slots beyond
        // the active count are dormant configuration).
        let vod_only_slot = if multi && serves_live && rng.chance(trends::VOD_ONLY_CDN_PROB) {
            Some(1)
        } else {
            None
        };
        // Live-only CDNs are a multi-CDN practice (§4.3 conditions on
        // multi-CDN publishers); small single-CDN publishers cannot express
        // it, so the draw is gated on being large enough to run several
        // CDNs.
        let live_only_slot = if multi
            && serves_live
            && size01 >= 0.35
            && rng.chance(trends::LIVE_ONLY_CDN_PROB)
        {
            Some(if vod_only_slot.is_some() { 2 } else { 1 })
        } else {
            None
        };

        // Ladder: top bitrate grows with size (big publishers push 4K-ready
        // encodes; small ones stop around 2 Mbps).
        let top = 1_800.0 + 7_000.0 * size01 + rng.range_f64(-400.0, 400.0);
        let ladder_spec = LadderSpec::guideline(Kbps(top.max(800.0) as u32));

        let mut platform_mix_jitter = [0.0; 5];
        for j in &mut platform_mix_jitter {
            *j = (rng.range_f64(-0.35, 0.35)).exp();
        }

        PublisherProfile {
            publisher: Publisher::new(id, kind, role),
            vh_day_final,
            size01,
            size_decades,
            dash_first: false, // assigned by the ecosystem after sorting by size
            protocol_u,
            platform_u,
            cdn_rotation,
            cdn_jitter: rng.range_f64(0.0, 0.45),
            vod_only_slot,
            live_only_slot,
            sdk_jitter: rng.range_f64(0.0, 1.0),
            platform_mix_jitter,
            ladder_spec,
        }
    }

    /// Marks this publisher as one of the large DASH-first publishers.
    pub fn set_dash_first(&mut self) {
        self.dash_first = true;
    }

    /// Puts the publisher on the big-publisher platform-adoption path:
    /// browser/mobile from day one, set-tops early, smart TVs and consoles
    /// by mid-study — so the paper's all-5 cohort (≈30% of publishers, over
    /// 60% of view-hours) contains the giants by the last snapshot while
    /// the weighted platform average still grows ≈37% over the window.
    pub fn force_all_platforms(&mut self) {
        self.platform_u = [0.05, 0.05, 0.08, 0.32, 0.44];
    }

    /// Pins the CDN rotation to the five majors (largest publishers) and
    /// the §4.3 observation that the biggest publishers run 4-5 CDNs.
    pub fn force_major_rotation(&mut self) {
        self.cdn_rotation = CdnName::MAJORS.to_vec();
        self.size01 = self.size01.max(0.93);
        self.cdn_jitter = self.cdn_jitter.max(0.35);
    }

    /// Test/debug accessor for the segregation slots.
    #[doc(hidden)]
    pub fn debug_segregation_slots(&self) -> (Option<usize>, Option<usize>) {
        (self.vod_only_slot, self.live_only_slot)
    }

    /// Daily view-hours at study progress `t` (the ecosystem grows over the
    /// window; §3's aggregate is quoted for the last snapshot).
    pub fn vh_day_at(&self, t: f64) -> f64 {
        self.vh_day_final * (0.45 + 0.55 * t)
    }

    /// The management plane at `snapshot`.
    pub fn plane(&self, snapshot: SnapshotId) -> SnapshotPlane {
        let t = snapshot.progress();

        // Protocols: latent draw vs adoption curve × size boost.
        let mut protocols = Vec::new();
        for (i, proto) in StreamingProtocol::ALL.iter().enumerate() {
            let base = trends::protocol_support(*proto).prob_at(t);
            let boost = if *proto == StreamingProtocol::Hls {
                1.0
            } else {
                trends::protocol_size_boost(self.size01)
            };
            if self.protocol_u[i] < (base * boost).clamp(0.0, 1.0) {
                protocols.push(*proto);
            }
        }
        if self.dash_first {
            // The few large DASH drivers: HLS always; DASH adopted early in
            // the second year; MSS/HDS dropped once DASH lands (they end the
            // study on exactly two protocols, Fig 3(b) right-most bar).
            let dash_adopted = t >= 0.35;
            protocols = if dash_adopted {
                vec![StreamingProtocol::Hls, StreamingProtocol::Dash]
            } else {
                vec![StreamingProtocol::Hls, StreamingProtocol::SmoothStreaming]
            };
        }
        if protocols.is_empty() {
            protocols.push(StreamingProtocol::Hls);
        }

        // Platforms.
        let mut platforms = Vec::new();
        let mut platform_weights = Vec::new();
        for (i, platform) in Platform::ALL.iter().enumerate() {
            let adoption_t = trends::platform_adoption_time(*platform, self.size01, t);
            let base = trends::platform_support(*platform).prob_at(adoption_t);
            let boost = trends::platform_size_boost(*platform, self.size01);
            if self.platform_u[i] < (base * boost).clamp(0.0, 1.0) {
                platforms.push(*platform);
                let share = trends::platform_view_share(*platform).prob_at(t).max(1e-4);
                platform_weights.push(share * self.platform_mix_jitter[i]);
            }
        }
        if platforms.is_empty() {
            platforms.push(Platform::Browser);
            platform_weights.push(1.0);
        }

        // CDNs: first n(t) of the fixed rotation, weighted by the global
        // traffic trend.
        let n = trends::cdn_count(self.size01, t, self.cdn_jitter).min(self.cdn_rotation.len());
        let mut assignments = Vec::with_capacity(n);
        for (slot, cdn) in self.cdn_rotation.iter().take(n).enumerate() {
            let weight = trends::cdn_traffic_weight(*cdn).at(t).max(0.01);
            let scope = if Some(slot) == self.vod_only_slot {
                CdnScope::VodOnly
            } else if Some(slot) == self.live_only_slot {
                CdnScope::LiveOnly
            } else {
                CdnScope::All
            };
            assignments.push(CdnAssignment { cdn: *cdn, weight, scope });
        }
        // Guarantee both classes are servable: slot 0 always carries all.
        if let Some(first) = assignments.first_mut() {
            first.scope = CdnScope::All;
        }
        let strategy = CdnStrategy::new(assignments).expect("rotation is valid");

        let ladder = self.ladder_spec.build().expect("guideline spec is valid");
        let vh_day = self.vh_day_at(t);

        SnapshotPlane {
            snapshot,
            protocols,
            platforms,
            strategy,
            ladder,
            titles: trends::title_count(vh_day),
            vh_day,
            sdk_window: trends::sdk_versions_per_kind(self.size_decades, self.sdk_jitter),
            platform_weights,
        }
    }
}

/// Weighted sampling without replacement of a 5-slot CDN rotation.
///
/// The first slot is what a single-CDN publisher uses, and Fig 11(a) shows
/// ≈80% of *all* publishers (most of whom are small) on CDN A — so the
/// primary slot is biased to A; the long tail fills the remaining slots.
fn sample_cdn_rotation(rng: &mut Rng) -> Vec<CdnName> {
    let all: Vec<CdnName> = CdnName::all_observed().collect();
    let mut weights: Vec<f64> = all.iter().map(|c| trends::cdn_membership_weight(*c)).collect();
    let mut rotation = Vec::with_capacity(5);
    if rng.chance(0.78) {
        rotation.push(CdnName::A);
        weights[CdnName::A.dense_index()] = 0.0;
    }
    while rotation.len() < 5 {
        let dist = match Discrete::new(&weights) {
            Ok(d) => d,
            Err(_) => break,
        };
        let idx = dist.sample(rng);
        rotation.push(all[idx]);
        weights[idx] = 0.0;
    }
    debug_assert!(!rotation.is_empty());
    rotation
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(n: usize, seed: u64) -> Vec<PublisherProfile> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|i| PublisherProfile::generate(PublisherId::new(i as u32), &mut rng))
            .collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = population(20, 7);
        let b = population(20, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vh_day_final, y.vh_day_final);
            assert_eq!(x.cdn_rotation, y.cdn_rotation);
        }
    }

    #[test]
    fn sizes_span_five_plus_decades() {
        let pop = population(300, 1);
        let min = pop.iter().map(|p| p.vh_day_final).fold(f64::MAX, f64::min);
        let max = pop.iter().map(|p| p.vh_day_final).fold(0.0, f64::max);
        assert!(max / min > 1e4, "span {}", max / min);
    }

    #[test]
    fn adoption_is_monotone_over_time() {
        // Once a publisher supports DASH it never drops it (latent-draw
        // construction), and set-top support likewise only grows.
        for p in population(50, 3) {
            let mut had_dash = false;
            let mut had_settop = false;
            for s in SnapshotId::all() {
                let plane = p.plane(s);
                let dash = plane.protocols.contains(&StreamingProtocol::Dash);
                let settop = plane.platforms.contains(&Platform::SetTopBox);
                if !p.dash_first {
                    assert!(!had_dash || dash, "DASH flapped for {}", p.publisher.id);
                }
                assert!(!had_settop || settop, "set-top flapped for {}", p.publisher.id);
                had_dash = dash;
                had_settop = settop;
            }
        }
    }

    #[test]
    fn dash_first_publishers_end_on_two_protocols() {
        let mut p = population(1, 9).remove(0);
        p.set_dash_first();
        let early = p.plane(SnapshotId::FIRST);
        assert!(early.protocols.contains(&StreamingProtocol::Hls));
        assert!(!early.protocols.contains(&StreamingProtocol::Dash));
        let late = p.plane(SnapshotId::LAST);
        assert_eq!(
            late.protocols,
            vec![StreamingProtocol::Hls, StreamingProtocol::Dash]
        );
    }

    #[test]
    fn bigger_publishers_have_more_of_everything() {
        let pop = population(400, 11);
        let small: Vec<_> = pop.iter().filter(|p| p.size01 < 0.3).collect();
        let large: Vec<_> = pop.iter().filter(|p| p.size01 > 0.75).collect();
        assert!(!small.is_empty() && !large.is_empty());
        let avg = |set: &[&PublisherProfile], f: &dyn Fn(&SnapshotPlane) -> f64| {
            set.iter().map(|p| f(&p.plane(SnapshotId::LAST))).sum::<f64>() / set.len() as f64
        };
        assert!(
            avg(&large, &|pl| pl.protocols.len() as f64) > avg(&small, &|pl| pl.protocols.len() as f64)
        );
        assert!(
            avg(&large, &|pl| pl.strategy.cdn_count() as f64)
                > avg(&small, &|pl| pl.strategy.cdn_count() as f64)
        );
        assert!(
            avg(&large, &|pl| pl.platforms.len() as f64) > avg(&small, &|pl| pl.platforms.len() as f64)
        );
        assert!(
            avg(&large, &|pl| pl.unique_sdk_count() as f64)
                > avg(&small, &|pl| pl.unique_sdk_count() as f64)
        );
    }

    #[test]
    fn planes_are_always_well_formed() {
        for p in population(100, 13) {
            for s in [SnapshotId::FIRST, SnapshotId::new(27).unwrap(), SnapshotId::LAST] {
                let plane = p.plane(s);
                assert!(!plane.protocols.is_empty());
                assert!(!plane.platforms.is_empty());
                assert!(plane.strategy.cdn_count() >= 1);
                assert!(plane.titles >= 1);
                assert!(plane.sdk_window >= 1);
                assert_eq!(plane.platforms.len(), plane.platform_weights.len());
                // Both content classes must be servable (slot 0 is All).
                assert!(!plane.strategy.eligible(vmp_core::content::ContentClass::Vod).is_empty());
                assert!(!plane.strategy.eligible(vmp_core::content::ContentClass::Live).is_empty());
            }
        }
    }

    #[test]
    fn cdn_a_dominates_membership() {
        let pop = population(500, 17);
        let with_a = pop
            .iter()
            .filter(|p| p.plane(SnapshotId::LAST).strategy.cdns().contains(&CdnName::A))
            .count();
        let share = with_a as f64 / pop.len() as f64;
        assert!((0.6..0.95).contains(&share), "CDN A share {share}");
    }

    #[test]
    fn unique_sdks_reach_dozens_for_largest() {
        let pop = population(500, 19);
        let max = pop
            .iter()
            .map(|p| p.plane(SnapshotId::LAST).unique_sdk_count())
            .max()
            .unwrap();
        assert!((40..=120).contains(&max), "max unique SDKs {max}");
    }
}

//! Flash-crowd arrival synthesis for live events.
//!
//! VoD sessions arrive as an (approximately) memoryless trickle; a live
//! event does not. Viewers pile in around the start in a *join storm*:
//! arrivals ramp steeply just before kickoff, peak in the opening minutes,
//! and decay to a steady in-event rate. [`JoinStorm`] samples those
//! correlated arrival offsets from a piecewise-linear intensity driven by
//! inverse-transform sampling on the seeded RNG, so a storm replays
//! byte-identically and the peak-to-baseline ratio is an explicit,
//! assertable parameter (the `live_event` experiment runs a 100× step).

use vmp_core::units::Seconds;
use vmp_stats::Rng;

/// The arrival intensity of a flash crowd joining a live event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinStorm {
    /// When the event (and the storm peak) starts on the virtual clock.
    pub event_start: Seconds,
    /// Pre-event ramp: arrivals climb from the baseline rate to the peak
    /// over this long before `event_start`.
    pub ramp: Seconds,
    /// Post-peak decay: arrivals fall back toward the baseline over this
    /// long after `event_start`.
    pub decay: Seconds,
    /// Peak arrival intensity relative to baseline (the "100×" in a 100×
    /// join storm).
    pub peak_ratio: f64,
}

impl JoinStorm {
    /// A storm peaking `peak_ratio`× over baseline at `event_start`, with
    /// a 2-minute ramp and a 5-minute decay.
    pub fn new(event_start: Seconds, peak_ratio: f64) -> JoinStorm {
        JoinStorm {
            event_start,
            ramp: Seconds(120.0),
            decay: Seconds(300.0),
            peak_ratio: peak_ratio.max(1.0),
        }
    }

    /// Relative arrival intensity at `t` (1.0 = baseline, `peak_ratio` =
    /// storm peak). Piecewise linear: baseline → ramp up → peak at
    /// `event_start` → decay → baseline.
    pub fn intensity(&self, t: Seconds) -> f64 {
        let dt = t.0 - self.event_start.0;
        let peak = self.peak_ratio;
        if dt < -self.ramp.0 || dt > self.decay.0 {
            1.0
        } else if dt <= 0.0 {
            // Ramp up toward the peak.
            1.0 + (peak - 1.0) * (1.0 + dt / self.ramp.0)
        } else {
            // Decay back to baseline.
            1.0 + (peak - 1.0) * (1.0 - dt / self.decay.0)
        }
    }

    /// Samples `count` arrival offsets in `[window_start, window_end)`
    /// distributed according to the storm intensity, sorted ascending.
    /// Inverse-transform sampling over the discretized intensity: one RNG
    /// draw per arrival, deterministic for a given seeded `rng`.
    pub fn sample_arrivals(
        &self,
        count: usize,
        window_start: Seconds,
        window_end: Seconds,
        rng: &mut Rng,
    ) -> Vec<Seconds> {
        let joins = vmp_obs::counter("session.join_storm");
        let span = (window_end.0 - window_start.0).max(f64::MIN_POSITIVE);
        // Discretize the intensity into a CDF (1-second resolution capped
        // at 4096 cells keeps this O(count + cells) and deterministic).
        let cells = (span.ceil() as usize).clamp(1, 4096);
        let cell_width = span / cells as f64;
        let mut cdf = Vec::with_capacity(cells);
        let mut total = 0.0;
        for i in 0..cells {
            let mid = Seconds(window_start.0 + (i as f64 + 0.5) * cell_width);
            total += self.intensity(mid) * cell_width;
            cdf.push(total);
        }
        let mut arrivals = Vec::with_capacity(count);
        for _ in 0..count {
            let target = rng.f64() * total;
            let cell = cdf.partition_point(|&c| c < target).min(cells - 1);
            let cell_start = if cell == 0 { 0.0 } else { cdf[cell - 1] };
            let mass = (cdf[cell] - cell_start).max(f64::MIN_POSITIVE);
            let frac = ((target - cell_start) / mass).clamp(0.0, 1.0);
            arrivals.push(Seconds(window_start.0 + (cell as f64 + frac) * cell_width));
            joins.inc();
        }
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> JoinStorm {
        JoinStorm::new(Seconds(600.0), 100.0)
    }

    #[test]
    fn intensity_peaks_at_event_start() {
        let s = storm();
        assert!((s.intensity(Seconds(600.0)) - 100.0).abs() < 1e-9);
        assert!((s.intensity(Seconds(0.0)) - 1.0).abs() < 1e-9);
        assert!((s.intensity(Seconds(2000.0)) - 1.0).abs() < 1e-9);
        // Halfway up the ramp and halfway down the decay.
        assert!((s.intensity(Seconds(540.0)) - 50.5).abs() < 1e-9);
        assert!((s.intensity(Seconds(750.0)) - 50.5).abs() < 1e-9);
    }

    #[test]
    fn arrivals_concentrate_around_the_event() {
        let s = storm();
        let mut rng = Rng::seed_from(7);
        let arrivals = s.sample_arrivals(2000, Seconds(0.0), Seconds(1800.0), &mut rng);
        assert_eq!(arrivals.len(), 2000);
        let in_storm = arrivals
            .iter()
            .filter(|t| t.0 >= 480.0 && t.0 <= 900.0)
            .count();
        // The storm window is ~23% of the timeline but the peak is 100×:
        // the overwhelming majority of arrivals land inside it.
        assert!(in_storm as f64 > 0.85 * 2000.0, "only {in_storm} of 2000 in the storm");
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        assert!(arrivals.iter().all(|t| (0.0..1800.0).contains(&t.0)));
    }

    #[test]
    fn arrivals_replay_byte_identically() {
        let s = storm();
        let run = || {
            let mut rng = Rng::seed_from(42);
            s.sample_arrivals(500, Seconds(0.0), Seconds(1800.0), &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn flat_storm_is_roughly_uniform() {
        let s = JoinStorm::new(Seconds(600.0), 1.0);
        let mut rng = Rng::seed_from(3);
        let arrivals = s.sample_arrivals(4000, Seconds(0.0), Seconds(1000.0), &mut rng);
        let first_half = arrivals.iter().filter(|t| t.0 < 500.0).count();
        assert!((1600..=2400).contains(&first_half), "skewed: {first_half}");
    }
}

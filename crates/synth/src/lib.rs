//! # vmp-synth — the synthetic publisher ecosystem
//!
//! The paper's dataset (27 months of Conviva telemetry from 100+ publishers,
//! 100B+ views) is proprietary; this crate is its substitute. It generates a
//! population of publishers whose management planes evolve over the study
//! window, then produces stratified, weighted view samples by actually
//! *running* each sampled view through the simulated management plane:
//! ladder from `vmp-packaging`, manifest URL from `vmp-manifest`, CDN pick
//! from `vmp-cdn`'s broker, playback through `vmp-session`.
//!
//! Calibration: generator priors come from the paper's *reported marginals*
//! (DESIGN.md §3 lists each). Joint statistics — counts per publisher,
//! weighted averages, complexity slopes, CDFs — are *measured* from the
//! generated telemetry by `vmp-analytics`, not hard-coded.
//!
//! Modules:
//! * [`trends`] — the global adoption/usage curves (every constant that maps
//!   to a paper figure lives here, in one reviewable table);
//! * [`publisher_gen`] — per-publisher static profile and per-snapshot
//!   management-plane configuration;
//! * [`views`] — weighted view-sample generation for one snapshot;
//! * [`ecosystem`] — the orchestrator producing a [`Dataset`];
//! * [`syndigraph`] — the owner↔syndicator graph (§6 / Fig 14).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod ecosystem;
pub mod live;
pub mod stream;
pub mod publisher_gen;
pub mod syndigraph;
pub mod trends;
pub mod views;

pub use ecosystem::{Dataset, EcosystemConfig};
pub use live::JoinStorm;
pub use publisher_gen::{PublisherProfile, SnapshotPlane};
pub use syndigraph::SyndicationGraph;

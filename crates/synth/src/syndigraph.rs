//! The owner ↔ syndicator graph (§6, Fig 14).
//!
//! Syndicators license and redistribute content from owners. Fig 14's CDF
//! says: >80% of content owners use at least one full syndicator, and the
//! top ~20% of owners reach about a third of all full syndicators. The
//! graph here reproduces that shape: each owner gets a target *reach*
//! (fraction of the syndicator pool) drawn from a skewed distribution, then
//! that many distinct syndicators.

use std::collections::{BTreeMap, BTreeSet};
use vmp_core::ids::PublisherId;
use vmp_core::publisher::SyndicationRole;
use vmp_stats::Rng;

use crate::publisher_gen::PublisherProfile;

/// The syndication relationships of the ecosystem.
#[derive(Debug, Clone, Default)]
pub struct SyndicationGraph {
    /// All full syndicators (and mixed publishers acting as syndicators).
    syndicators: Vec<PublisherId>,
    /// owner → set of syndicators carrying its content.
    by_owner: BTreeMap<PublisherId, BTreeSet<PublisherId>>,
    /// syndicator → set of owners it licenses from.
    by_syndicator: BTreeMap<PublisherId, BTreeSet<PublisherId>>,
}

impl SyndicationGraph {
    /// Builds the graph for a population.
    pub fn generate(population: &[PublisherProfile], rng: &mut Rng) -> SyndicationGraph {
        let syndicators: Vec<PublisherId> = population
            .iter()
            .filter(|p| {
                matches!(
                    p.publisher.role,
                    SyndicationRole::FullSyndicator | SyndicationRole::Mixed
                )
            })
            .map(|p| p.publisher.id)
            .collect();
        let owners: Vec<&PublisherProfile> = population
            .iter()
            .filter(|p| {
                matches!(p.publisher.role, SyndicationRole::OwnerOnly | SyndicationRole::Mixed)
            })
            .collect();

        let mut graph = SyndicationGraph {
            syndicators: syndicators.clone(),
            by_owner: BTreeMap::new(),
            by_syndicator: BTreeMap::new(),
        };
        if syndicators.is_empty() {
            return graph;
        }

        for owner in owners {
            // Reach: ~18% of owners use no syndicator; the rest draw a
            // fraction of the pool skewed low, with bigger owners reaching
            // further (the popular-catalogue effect).
            let reach_fraction = if rng.chance(0.18) {
                0.0
            } else {
                let base = rng.f64().powf(2.2) * 0.38; // skewed toward 0
                (base + 0.10 * owner.size01).min(0.45)
            };
            let pool: Vec<PublisherId> = syndicators
                .iter()
                .copied()
                .filter(|s| *s != owner.publisher.id)
                .collect();
            if pool.is_empty() {
                continue;
            }
            let k = ((reach_fraction * pool.len() as f64).round() as usize).min(pool.len());
            if k == 0 {
                continue;
            }
            let chosen = rng.sample_indices(pool.len(), k);
            let set: BTreeSet<PublisherId> = chosen.into_iter().map(|i| pool[i]).collect();
            for s in &set {
                graph.by_syndicator.entry(*s).or_default().insert(owner.publisher.id);
            }
            graph.by_owner.insert(owner.publisher.id, set);
        }
        graph
    }

    /// All full syndicators.
    pub fn syndicators(&self) -> &[PublisherId] {
        &self.syndicators
    }

    /// The syndicators carrying `owner`'s content.
    pub fn syndicators_of(&self, owner: PublisherId) -> impl Iterator<Item = PublisherId> + '_ {
        self.by_owner.get(&owner).into_iter().flatten().copied()
    }

    /// The owners whose content `syndicator` carries.
    pub fn owners_of(&self, syndicator: PublisherId) -> impl Iterator<Item = PublisherId> + '_ {
        self.by_syndicator.get(&syndicator).into_iter().flatten().copied()
    }

    /// Fraction of the syndicator pool used by each owner — the Fig 14 CDF
    /// input (owners with zero syndicators included).
    pub fn reach_fractions(&self, owners: &[PublisherId]) -> Vec<f64> {
        let pool = self.syndicators.len().max(1) as f64;
        owners
            .iter()
            .map(|o| self.by_owner.get(o).map(|s| s.len()).unwrap_or(0) as f64 / pool)
            .collect()
    }

    /// Picks an owner for a syndicated view served by `syndicator`.
    pub fn sample_owner(&self, syndicator: PublisherId, rng: &mut Rng) -> Option<PublisherId> {
        let owners = self.by_syndicator.get(&syndicator)?;
        if owners.is_empty() {
            return None;
        }
        let v: Vec<PublisherId> = owners.iter().copied().collect();
        Some(*rng.choose(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publisher_gen::PublisherProfile;

    fn graph(n: usize, seed: u64) -> (Vec<PublisherProfile>, SyndicationGraph) {
        let mut rng = Rng::seed_from(seed);
        let pop: Vec<PublisherProfile> = (0..n)
            .map(|i| PublisherProfile::generate(PublisherId::new(i as u32), &mut rng))
            .collect();
        let g = SyndicationGraph::generate(&pop, &mut rng);
        (pop, g)
    }

    #[test]
    fn graph_is_consistent_both_ways() {
        let (_, g) = graph(200, 1);
        for (owner, synds) in &g.by_owner {
            for s in synds {
                assert!(g.by_syndicator[s].contains(owner));
            }
        }
        for (synd, owners) in &g.by_syndicator {
            for o in owners {
                assert!(g.by_owner[o].contains(synd));
            }
        }
    }

    #[test]
    fn fig14_shape_most_owners_syndicate() {
        let (pop, g) = graph(400, 2);
        let owners: Vec<PublisherId> = pop
            .iter()
            .filter(|p| {
                matches!(p.publisher.role, SyndicationRole::OwnerOnly | SyndicationRole::Mixed)
            })
            .map(|p| p.publisher.id)
            .collect();
        let fractions = g.reach_fractions(&owners);
        let with_any = fractions.iter().filter(|f| **f > 0.0).count() as f64;
        let share = with_any / fractions.len() as f64;
        assert!(share > 0.75, "owners with ≥1 syndicator: {share}");
        // Top owners reach a substantial fraction (≈1/3) of the pool.
        let mut sorted = fractions.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let p90 = sorted[sorted.len() / 10];
        assert!((0.18..=0.50).contains(&p90), "p90 reach {p90}");
    }

    #[test]
    fn no_self_syndication() {
        let (_, g) = graph(200, 3);
        for (owner, synds) in &g.by_owner {
            assert!(!synds.contains(owner));
        }
    }

    #[test]
    fn sample_owner_only_from_licensed() {
        let (_, g) = graph(200, 4);
        let mut rng = Rng::seed_from(9);
        let syndicators: Vec<PublisherId> = g.by_syndicator.keys().copied().collect();
        for synd in syndicators.iter().take(20) {
            let owners = &g.by_syndicator[synd];
            for _ in 0..10 {
                let o = g.sample_owner(*synd, &mut rng).unwrap();
                assert!(owners.contains(&o));
            }
        }
    }

    #[test]
    fn empty_population_yields_empty_graph() {
        let mut rng = Rng::seed_from(5);
        let g = SyndicationGraph::generate(&[], &mut rng);
        assert!(g.syndicators().is_empty());
        assert!(g.reach_fractions(&[]).is_empty());
    }
}

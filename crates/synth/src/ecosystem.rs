//! The ecosystem orchestrator: population → planes → weighted view samples.

use vmp_core::ids::PublisherId;
use vmp_core::time::SnapshotId;
use vmp_core::view::SampledView;

use crate::publisher_gen::PublisherProfile;
use crate::stream::ViewStream;
use crate::syndigraph::SyndicationGraph;
use crate::views::ViewGenConfig;

/// Full configuration of one ecosystem generation run.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of publishers (the paper has "more than one hundred").
    pub publishers: usize,
    /// Per-cell sampling parameters.
    pub view_gen: ViewGenConfig,
    /// Generate every `snapshot_stride`-th snapshot (1 = all 54).
    pub snapshot_stride: u32,
    /// Generator shards (worker threads) for the snapshot fan-out.
    pub threads: usize,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 0x5EED_CAFE,
            publishers: 120,
            view_gen: ViewGenConfig::default(),
            snapshot_stride: 1,
            threads: 8,
        }
    }
}

impl EcosystemConfig {
    /// A small, fast configuration for unit/integration tests.
    pub fn small() -> EcosystemConfig {
        EcosystemConfig {
            seed: 0x5EED_CAFE,
            publishers: 120,
            view_gen: ViewGenConfig {
                min_samples: 25,
                max_samples: 400,
                sim_media_cap: vmp_core::units::Seconds(12.0),
                faults: None,
                volume_scale: 1,
            },
            snapshot_stride: 6,
            threads: 4,
        }
    }
}

/// Where a dataset's sampled views live. Once they are handed to analytics
/// by move ([`Dataset::take_views`] or the streaming pipeline), the state
/// flips to [`ViewState::HandedOut`] and every row accessor fails loudly
/// instead of silently yielding nothing.
#[derive(Debug)]
enum ViewState {
    /// The views are resident in the dataset.
    Present(Vec<SampledView>),
    /// The views were moved out (ingested or streamed); row accessors are
    /// an error.
    HandedOut,
}

/// The generated dataset: the synthetic stand-in for the Conviva telemetry.
#[derive(Debug)]
pub struct Dataset {
    /// The configuration that produced it.
    pub config: EcosystemConfig,
    /// Publisher profiles (sorted by ID).
    pub profiles: Vec<PublisherProfile>,
    /// The syndication graph.
    pub graph: SyndicationGraph,
    /// All weighted view samples across the generated snapshots — or the
    /// explicit handed-out marker after [`take_views`](Self::take_views).
    views: ViewState,
    /// Which snapshots were generated.
    pub snapshots: Vec<SnapshotId>,
}

impl Dataset {
    /// Generates the full dataset by draining a [`ViewStream`] — the same
    /// sharded generation the out-of-core pipeline uses, collected into a
    /// resident vector for row-level consumers and tests.
    pub fn generate(config: EcosystemConfig) -> Dataset {
        let mut stream = ViewStream::new(config);
        let mut views: Vec<SampledView> = Vec::new();
        while let Some(batch) = stream.next_batch() {
            views.extend(batch.views);
        }
        let mut dataset = stream.into_dataset();
        dataset.views = ViewState::Present(views);
        dataset
    }

    /// Assembles a dataset whose views were delivered elsewhere (the
    /// streaming pipeline): profiles, graph and snapshot list are resident,
    /// row accessors fail loudly.
    pub(crate) fn without_views(
        config: EcosystemConfig,
        profiles: Vec<PublisherProfile>,
        graph: SyndicationGraph,
        snapshots: Vec<SnapshotId>,
    ) -> Dataset {
        Dataset { config, profiles, graph, views: ViewState::HandedOut, snapshots }
    }

    /// The three largest publishers by final view-hours (the Fig 2(c)/6(b)
    /// exclusion set).
    pub fn largest_publishers(&self, n: usize) -> Vec<PublisherId> {
        let mut order: Vec<&PublisherProfile> = self.profiles.iter().collect();
        order.sort_by(|a, b| b.vh_day_final.total_cmp(&a.vh_day_final));
        order.iter().take(n).map(|p| p.publisher.id).collect()
    }

    /// Profile lookup.
    pub fn profile(&self, id: PublisherId) -> Option<&PublisherProfile> {
        self.profiles.get(id.index())
    }

    /// Whether the views were moved out (ingested or streamed).
    pub fn views_taken(&self) -> bool {
        matches!(self.views, ViewState::HandedOut)
    }

    /// The resident sampled views.
    ///
    /// # Panics
    ///
    /// Panics if the views were already handed to analytics
    /// ([`take_views`](Self::take_views) or the streaming pipeline) —
    /// misuse that used to silently yield nothing.
    pub fn views(&self) -> &[SampledView] {
        assert!(
            !self.views_taken(),
            "dataset views were already handed to analytics (take_views or the streaming \
             pipeline); query the ViewStore instead of the dataset"
        );
        match &self.views {
            ViewState::Present(views) => views,
            ViewState::HandedOut => &[],
        }
    }

    /// Moves the sampled views out — for handing to analytics ingest by
    /// move instead of cloning the whole batch. Profiles, graph and
    /// snapshot list stay behind; the dataset enters the handed-out state
    /// and any later row access ([`views`](Self::views),
    /// [`views_at`](Self::views_at), or a second `take_views`) panics with
    /// a clear message instead of silently yielding nothing.
    pub fn take_views(&mut self) -> Vec<SampledView> {
        assert!(
            !self.views_taken(),
            "dataset views were already handed to analytics; take_views may only be called \
             once"
        );
        match std::mem::replace(&mut self.views, ViewState::HandedOut) {
            ViewState::Present(views) => views,
            ViewState::HandedOut => Vec::new(),
        }
    }

    /// Views belonging to one snapshot. Panics after the views were handed
    /// out (see [`views`](Self::views)).
    pub fn views_at(&self, snapshot: SnapshotId) -> impl Iterator<Item = &SampledView> {
        self.views().iter().filter(move |v| v.record.snapshot == snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_generates_and_is_deterministic() {
        let a = Dataset::generate(EcosystemConfig::small());
        let b = Dataset::generate(EcosystemConfig::small());
        assert_eq!(a.views().len(), b.views().len());
        assert!(!a.views().is_empty());
        for (x, y) in a.views().iter().take(500).zip(b.views().iter().take(500)) {
            assert_eq!(x.record, y.record);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn determinism_is_independent_of_thread_count() {
        let mut c1 = EcosystemConfig::small();
        c1.threads = 1;
        let mut c8 = EcosystemConfig::small();
        c8.threads = 8;
        let a = Dataset::generate(c1);
        let b = Dataset::generate(c8);
        assert_eq!(a.views().len(), b.views().len());
        for (x, y) in a.views().iter().zip(b.views()) {
            assert_eq!(x.record, y.record);
        }
    }

    #[test]
    fn last_snapshot_is_always_present() {
        let d = Dataset::generate(EcosystemConfig::small());
        assert!(d.snapshots.contains(&SnapshotId::LAST));
        assert!(d.views_at(SnapshotId::LAST).count() > 0);
    }

    #[test]
    fn every_publisher_contributes_views() {
        let d = Dataset::generate(EcosystemConfig::small());
        let mut seen = vec![false; d.profiles.len()];
        for v in d.views() {
            seen[v.record.publisher.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn largest_publishers_are_dash_first() {
        let d = Dataset::generate(EcosystemConfig::small());
        for id in d.largest_publishers(crate::trends::DASH_FIRST_PUBLISHERS) {
            assert!(d.profile(id).unwrap().dash_first);
        }
    }

    #[test]
    fn take_views_flips_to_handed_out() {
        let mut d = Dataset::generate(EcosystemConfig::small());
        assert!(!d.views_taken());
        let views = d.take_views();
        assert!(!views.is_empty());
        assert!(d.views_taken());
    }

    /// The old footgun: `views_at` after `take_views` silently yielded
    /// nothing. It is now a loud error.
    #[test]
    #[should_panic(expected = "already handed to analytics")]
    fn views_at_after_take_views_is_loud() {
        let mut d = Dataset::generate(EcosystemConfig::small());
        let _views = d.take_views();
        let _ = d.views_at(SnapshotId::LAST).count();
    }

    #[test]
    #[should_panic(expected = "may only be called once")]
    fn double_take_views_is_loud() {
        let mut d = Dataset::generate(EcosystemConfig::small());
        let _first = d.take_views();
        let _second = d.take_views();
    }
}

//! The ecosystem orchestrator: population → planes → weighted view samples.

use crossbeam::thread;
use vmp_core::ids::PublisherId;
use vmp_core::time::SnapshotId;
use vmp_core::view::SampledView;
use vmp_stats::Rng;

use crate::publisher_gen::PublisherProfile;
use crate::syndigraph::SyndicationGraph;
use crate::trends;
use crate::views::{generate_views, ViewGenConfig};

/// Full configuration of one ecosystem generation run.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of publishers (the paper has "more than one hundred").
    pub publishers: usize,
    /// Per-cell sampling parameters.
    pub view_gen: ViewGenConfig,
    /// Generate every `snapshot_stride`-th snapshot (1 = all 54).
    pub snapshot_stride: u32,
    /// Worker threads for the snapshot fan-out.
    pub threads: usize,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 0x5EED_CAFE,
            publishers: 120,
            view_gen: ViewGenConfig::default(),
            snapshot_stride: 1,
            threads: 8,
        }
    }
}

impl EcosystemConfig {
    /// A small, fast configuration for unit/integration tests.
    pub fn small() -> EcosystemConfig {
        EcosystemConfig {
            seed: 0x5EED_CAFE,
            publishers: 120,
            view_gen: ViewGenConfig {
                min_samples: 25,
                max_samples: 400,
                sim_media_cap: vmp_core::units::Seconds(12.0),
                faults: None,
            },
            snapshot_stride: 6,
            threads: 4,
        }
    }
}

/// The generated dataset: the synthetic stand-in for the Conviva telemetry.
#[derive(Debug)]
pub struct Dataset {
    /// The configuration that produced it.
    pub config: EcosystemConfig,
    /// Publisher profiles (sorted by ID).
    pub profiles: Vec<PublisherProfile>,
    /// The syndication graph.
    pub graph: SyndicationGraph,
    /// All weighted view samples across the generated snapshots.
    pub views: Vec<SampledView>,
    /// Which snapshots were generated.
    pub snapshots: Vec<SnapshotId>,
}

impl Dataset {
    /// Generates the full dataset.
    pub fn generate(config: EcosystemConfig) -> Dataset {
        let _total = vmp_obs::span("synth.generate");
        vmp_obs::counter("synth.datasets_generated").inc();
        let master = Rng::seed_from(config.seed);

        // Population.
        let population_span = vmp_obs::span("synth.population");
        let mut pop_rng = master.fork(1);
        let mut profiles: Vec<PublisherProfile> = (0..config.publishers)
            .map(|i| PublisherProfile::generate(PublisherId::new(i as u32), &mut pop_rng))
            .collect();
        vmp_obs::counter("synth.publishers_generated").add(profiles.len() as u64);

        // The N largest publishers are the DASH drivers (§4.1) and the
        // "3 largest" excluded in Fig 2(c)/6(b).
        let mut order: Vec<usize> = (0..profiles.len()).collect();
        order.sort_by(|a, b| profiles[*b].vh_day_final.total_cmp(&profiles[*a].vh_day_final));
        for idx in order.iter().take(trends::DASH_FIRST_PUBLISHERS) {
            profiles[*idx].set_dash_first();
        }
        // §4.3: every publisher above 10^5 X uses at least 4 CDNs and the
        // weighted CDN average is ≈4.5 — the biggest publishers run the
        // full major-CDN rotation.
        for idx in order.iter().take(4) {
            profiles[*idx].force_major_rotation();
            profiles[*idx].force_all_platforms();
        }

        drop(population_span);

        // Syndication graph.
        let graph_span = vmp_obs::span("synth.syndication_graph");
        let mut graph_rng = master.fork(2);
        let graph = SyndicationGraph::generate(&profiles, &mut graph_rng);
        drop(graph_span);

        // Snapshots to generate.
        let stride = config.snapshot_stride.max(1);
        let mut snapshots: Vec<SnapshotId> =
            SnapshotId::all().filter(|s| s.index() % stride == 0).collect();
        if snapshots.last() != Some(&SnapshotId::LAST) {
            snapshots.push(SnapshotId::LAST); // per-publisher analyses need it
        }

        // Fan out across snapshots; each worker gets an independent forked
        // RNG, so the result is independent of scheduling.
        let view_span = vmp_obs::span("synth.view_generation");
        let threads = config.threads.max(1);
        let mut per_snapshot: Vec<Vec<SampledView>> = Vec::with_capacity(snapshots.len());
        {
            let chunks: Vec<Vec<SnapshotId>> = snapshots
                .chunks(snapshots.len().div_ceil(threads))
                .map(|c| c.to_vec())
                .collect();
            let results: Vec<Vec<(SnapshotId, Vec<SampledView>)>> = thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in &chunks {
                    let profiles = &profiles;
                    let graph = &graph;
                    let master = &master;
                    let view_gen = &config.view_gen;
                    handles.push(scope.spawn(move |_| {
                        let mut out = Vec::new();
                        for snapshot in chunk {
                            let _snap_span = vmp_obs::span("synth.snapshot");
                            let mut views = Vec::new();
                            for (pi, profile) in profiles.iter().enumerate() {
                                let mut rng = master
                                    .fork(1000 + snapshot.index() as u64)
                                    .fork(pi as u64);
                                let plane = profile.plane(*snapshot);
                                let session_base =
                                    snapshot.index().wrapping_mul(1_000_000) + (pi as u32) * 1_000;
                                views.extend(generate_views(
                                    profile,
                                    &plane,
                                    graph,
                                    view_gen,
                                    *snapshot,
                                    session_base,
                                    &mut rng,
                                ));
                            }
                            out.push((*snapshot, views));
                        }
                        out
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            })
            .expect("scope");

            let mut collected: Vec<(SnapshotId, Vec<SampledView>)> =
                results.into_iter().flatten().collect();
            collected.sort_by_key(|(s, _)| *s);
            for (_, v) in collected {
                per_snapshot.push(v);
            }
        }

        drop(view_span);

        let views: Vec<SampledView> = per_snapshot.into_iter().flatten().collect();
        vmp_obs::counter("synth.views_sampled").add(views.len() as u64);
        vmp_obs::counter("synth.snapshots_generated").add(snapshots.len() as u64);
        Dataset { config, profiles, graph, views, snapshots }
    }

    /// The three largest publishers by final view-hours (the Fig 2(c)/6(b)
    /// exclusion set).
    pub fn largest_publishers(&self, n: usize) -> Vec<PublisherId> {
        let mut order: Vec<&PublisherProfile> = self.profiles.iter().collect();
        order.sort_by(|a, b| b.vh_day_final.total_cmp(&a.vh_day_final));
        order.iter().take(n).map(|p| p.publisher.id).collect()
    }

    /// Profile lookup.
    pub fn profile(&self, id: PublisherId) -> Option<&PublisherProfile> {
        self.profiles.get(id.index())
    }

    /// Moves the sampled views out — for handing to analytics ingest by
    /// move instead of cloning the whole batch. Profiles, graph and
    /// snapshot list stay behind; [`views_at`](Self::views_at) yields
    /// nothing afterwards.
    pub fn take_views(&mut self) -> Vec<SampledView> {
        std::mem::take(&mut self.views)
    }

    /// Views belonging to one snapshot.
    pub fn views_at(&self, snapshot: SnapshotId) -> impl Iterator<Item = &SampledView> {
        self.views.iter().filter(move |v| v.record.snapshot == snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_generates_and_is_deterministic() {
        let a = Dataset::generate(EcosystemConfig::small());
        let b = Dataset::generate(EcosystemConfig::small());
        assert_eq!(a.views.len(), b.views.len());
        assert!(!a.views.is_empty());
        for (x, y) in a.views.iter().take(500).zip(b.views.iter().take(500)) {
            assert_eq!(x.record, y.record);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn determinism_is_independent_of_thread_count() {
        let mut c1 = EcosystemConfig::small();
        c1.threads = 1;
        let mut c8 = EcosystemConfig::small();
        c8.threads = 8;
        let a = Dataset::generate(c1);
        let b = Dataset::generate(c8);
        assert_eq!(a.views.len(), b.views.len());
        for (x, y) in a.views.iter().zip(&b.views) {
            assert_eq!(x.record, y.record);
        }
    }

    #[test]
    fn last_snapshot_is_always_present() {
        let d = Dataset::generate(EcosystemConfig::small());
        assert!(d.snapshots.contains(&SnapshotId::LAST));
        assert!(d.views_at(SnapshotId::LAST).count() > 0);
    }

    #[test]
    fn every_publisher_contributes_views() {
        let d = Dataset::generate(EcosystemConfig::small());
        let mut seen = vec![false; d.profiles.len()];
        for v in &d.views {
            seen[v.record.publisher.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn largest_publishers_are_dash_first() {
        let d = Dataset::generate(EcosystemConfig::small());
        for id in d.largest_publishers(crate::trends::DASH_FIRST_PUBLISHERS) {
            assert!(d.profile(id).unwrap().dash_first);
        }
    }
}

//! The calibration tables: every global curve the generator uses, each
//! annotated with the paper statement it encodes. Changing a figure's
//! calibration means editing exactly one constant here.

use vmp_core::platform::{BrowserTech, Platform};
use vmp_core::protocol::StreamingProtocol;
use vmp_stats::curves::Trend;

/// Per-publisher-size scale anchor: the paper's confidential `X` daily
/// view-hours. The absolute value is arbitrary (the paper hides it); all
/// bucket analyses are relative to it.
pub const X_VIEW_HOURS: f64 = 100.0;

/// Number of view-hour decades the population spans (buckets `<X` through
/// `10^5X..10^6X`, Fig 3(b)/12(b)).
pub const SIZE_DECADES: usize = 7;

/// Fraction of publishers per size bucket (Fig 3(b): the 100X–1000X bucket
/// holds >35% of publishers; extremes are thin).
pub const SIZE_BUCKET_WEIGHTS: [f64; SIZE_DECADES] =
    [0.05, 0.12, 0.20, 0.36, 0.17, 0.07, 0.03];

/// Probability that a publisher supports a protocol, vs study progress.
/// Encodes Fig 2(a): HLS ≈ 91% throughout, DASH 10% → 43%, MSS ≈ 40%,
/// HDS declining to 19%, RTMP residual, progressive niche.
pub fn protocol_support(proto: StreamingProtocol) -> Trend {
    match proto {
        StreamingProtocol::Hls => Trend::Constant(0.91),
        StreamingProtocol::Dash => {
            Trend::Logistic { floor: 0.10, ceil: 0.54, midpoint: 0.62, steepness: 7.0 }
        }
        StreamingProtocol::SmoothStreaming => Trend::Linear { start: 0.42, end: 0.40 },
        StreamingProtocol::Hds => Trend::Linear { start: 0.36, end: 0.19 },
        StreamingProtocol::Rtmp => Trend::Decay { start: 0.20, floor: 0.03, rate: 3.0 },
        StreamingProtocol::Progressive => Trend::Constant(0.10),
    }
}

/// Size leverage on protocol support: multiplier applied to non-HLS support
/// probabilities, as a function of normalized size (0 = smallest decade,
/// 1 = largest). Encodes "publishers with more view-hours tend to support
/// more protocols" (Fig 3(b)).
pub fn protocol_size_boost(size01: f64) -> f64 {
    0.42 + 1.2 * size01
}

/// Relative preference weight a publisher's control plane gives a protocol
/// when several are eligible for a device. DASH preference is split by
/// whether the publisher is one of the few large DASH-first publishers
/// (Fig 2(b) vs 2(c): DASH view-hours are driven by `N` large publishers;
/// without them DASH serves <5% of view-hours, and half of DASH supporters
/// use it for ≤20% of their traffic, Fig 4).
pub fn protocol_preference(proto: StreamingProtocol, dash_first: bool, t: f64) -> f64 {
    match proto {
        StreamingProtocol::Hls => 0.92,
        StreamingProtocol::Dash => {
            if dash_first {
                // Ramp up as the publisher migrates traffic to DASH.
                Trend::Logistic { floor: 0.2, ceil: 6.0, midpoint: 0.55, steepness: 9.0 }.at(t)
            } else {
                0.10
            }
        }
        StreamingProtocol::SmoothStreaming => 1.05,
        StreamingProtocol::Hds => 1.0,
        StreamingProtocol::Rtmp => Trend::Decay { start: 0.45, floor: 0.004, rate: 5.0 }.at(t),
        StreamingProtocol::Progressive => 0.05,
    }
}

/// Device ↔ protocol compatibility weight (0 = cannot play). Encodes §2's
/// constraints: Apple devices are HLS-only; Silverlight speaks MSS; Flash
/// speaks HDS/RTMP; MSE browsers and Android favor DASH capability, etc.
pub fn device_protocol_weight(
    device: vmp_core::device::DeviceModel,
    proto: StreamingProtocol,
) -> f64 {
    use vmp_core::device::DeviceModel as D;
    use StreamingProtocol as P;
    if device.hls_only() {
        return if proto == P::Hls { 1.0 } else { 0.0 };
    }
    match device {
        D::DesktopBrowser(BrowserTech::Flash) => match proto {
            P::Hds => 1.0,
            P::Rtmp => 0.5,
            P::Progressive => 0.3,
            P::Hls => 0.2,
            _ => 0.0,
        },
        D::DesktopBrowser(BrowserTech::Silverlight) => match proto {
            P::SmoothStreaming => 1.0,
            _ => 0.0,
        },
        D::DesktopBrowser(BrowserTech::Html5) | D::MobileBrowser => match proto {
            P::Hls => 1.0,
            P::Dash => 0.8,
            P::Progressive => 0.15,
            _ => 0.0,
        },
        D::AndroidPhone | D::AndroidTablet => match proto {
            P::Hls => 1.0,
            P::Dash => 0.9,
            P::SmoothStreaming => 0.1,
            P::Progressive => 0.1,
            _ => 0.0,
        },
        D::Xbox => match proto {
            P::SmoothStreaming => 1.0,
            P::Dash => 0.5,
            P::Hls => 0.3,
            _ => 0.0,
        },
        D::PlayStation => match proto {
            P::Hls => 0.8,
            P::SmoothStreaming => 0.5,
            P::Dash => 0.5,
            _ => 0.0,
        },
        D::Roku | D::FireTv => match proto {
            P::Hls => 1.0,
            P::Dash => 0.6,
            P::SmoothStreaming => 0.55,
            _ => 0.0,
        },
        D::Chromecast => match proto {
            P::Hls => 1.0,
            P::Dash => 0.8,
            // §5's triaging example: a Chromecast + SmoothStreaming + CDN
            // interaction failure — the combination exists but is rare.
            P::SmoothStreaming => 0.1,
            _ => 0.0,
        },
        D::SamsungTv | D::LgTv | D::VizioTv => match proto {
            P::Hls => 1.0,
            P::Dash => 0.5,
            P::SmoothStreaming => 0.55,
            _ => 0.0,
        },
        // Apple devices handled by the hls_only() early return.
        D::IPhone | D::IPad | D::AppleTv => 0.0,
    }
}

/// Probability a publisher supports a platform (Fig 7: browsers/mobile near
/// universal; set-top <20% → >50%; smart TV <20% → >60%; consoles modest).
pub fn platform_support(platform: Platform) -> Trend {
    match platform {
        Platform::Browser => Trend::Constant(0.98),
        Platform::MobileApp => Trend::Linear { start: 0.88, end: 0.97 },
        Platform::SetTopBox => {
            Trend::Logistic { floor: 0.085, ceil: 0.58, midpoint: 0.5, steepness: 6.0 }
        }
        Platform::SmartTv => {
            Trend::Logistic { floor: 0.13, ceil: 0.78, midpoint: 0.55, steepness: 6.0 }
        }
        Platform::GameConsole => Trend::Linear { start: 0.32, end: 0.55 },
    }
}

/// Size leverage on app-platform support (browsers/mobile stay universal).
pub fn platform_size_boost(platform: Platform, size01: f64) -> f64 {
    match platform {
        Platform::Browser | Platform::MobileApp => 1.0,
        _ => 0.70 + 0.75 * size01,
    }
}

/// Size leverage on *when* a publisher adopts an app platform: larger
/// publishers were the first movers on set-tops/TVs, so their adoption
/// clock runs ahead of study time.
pub fn platform_adoption_time(platform: Platform, size01: f64, t: f64) -> f64 {
    match platform {
        Platform::Browser | Platform::MobileApp => t,
        _ => (t + 0.35 * (size01 - 0.35)).clamp(0.0, 1.0),
    }
}

/// Global mix of *views* (not hours) across platforms (Fig 6(c)): browser
/// share falls, mobile views grow, set-top views reach ≈20%.
pub fn platform_view_share(platform: Platform) -> Trend {
    match platform {
        Platform::Browser => Trend::Linear { start: 0.62, end: 0.27 },
        Platform::MobileApp => Trend::Linear { start: 0.28, end: 0.34 },
        Platform::SetTopBox => {
            Trend::Logistic { floor: 0.060, ceil: 0.215, midpoint: 0.55, steepness: 6.5 }
        }
        Platform::SmartTv => Trend::Linear { start: 0.02, end: 0.035 },
        Platform::GameConsole => Trend::Linear { start: 0.035, end: 0.045 },
    }
}

/// Per-platform view-duration model (hours): (median, multiplicative
/// spread) of a lognormal. Encodes Fig 8: >60% of set-top views exceed
/// 0.2 h while only ≈24% of mobile/browser views do — this is what turns
/// 20% of views into ≈40% of view-hours for set-tops (Fig 6(a) vs 6(c)).
pub fn duration_model(platform: Platform) -> (f64, f64) {
    match platform {
        Platform::Browser => (0.085, 3.0),
        Platform::MobileApp => (0.068, 3.0),
        Platform::SetTopBox => (0.34, 2.5),
        Platform::SmartTv => (0.15, 2.5),
        Platform::GameConsole => (0.22, 2.5),
    }
}

/// Browser player technology mix over time (Fig 10(a)): HTML5 ≈25% → ≈60%
/// of browser view-hours, Flash ≈60% → ≈40% (the paper's "much more modest
/// drop" than Chrome's view-count stats), Silverlight fading.
pub fn browser_tech_share(tech: BrowserTech) -> Trend {
    match tech {
        BrowserTech::Html5 => Trend::Linear { start: 0.15, end: 0.55 },
        BrowserTech::Flash => Trend::Linear { start: 0.68, end: 0.43 },
        BrowserTech::Silverlight => Trend::Decay { start: 0.17, floor: 0.02, rate: 3.0 },
    }
}

/// Mobile device mix (Fig 10(b)): Android view-hours rise to parity.
pub fn mobile_device_share(android: bool) -> Trend {
    if android {
        Trend::Linear { start: 0.33, end: 0.50 }
    } else {
        Trend::Linear { start: 0.67, end: 0.50 }
    }
}

/// Set-top device mix (Fig 10(c)): Roku dominant; AppleTV/FireTV
/// non-negligible; Chromecast small.
pub fn settop_device_share(device: vmp_core::device::DeviceModel) -> Trend {
    use vmp_core::device::DeviceModel as D;
    match device {
        D::Roku => Trend::Linear { start: 0.60, end: 0.52 },
        D::AppleTv => Trend::Linear { start: 0.22, end: 0.22 },
        D::FireTv => Trend::Linear { start: 0.10, end: 0.18 },
        D::Chromecast => Trend::Linear { start: 0.08, end: 0.08 },
        _ => Trend::Constant(0.0),
    }
}

/// Smart-TV device mix.
pub fn smarttv_device_share(device: vmp_core::device::DeviceModel) -> Trend {
    use vmp_core::device::DeviceModel as D;
    match device {
        D::SamsungTv => Trend::Constant(0.50),
        D::LgTv => Trend::Constant(0.30),
        D::VizioTv => Trend::Constant(0.20),
        _ => Trend::Constant(0.0),
    }
}

/// Probability a publisher's rotation includes each major CDN (Fig 11(a):
/// A ≈80% of publishers, C ≈30%, others lower; stable over time).
pub fn cdn_membership_weight(cdn: vmp_core::cdn::CdnName) -> f64 {
    use vmp_core::cdn::CdnName as C;
    match cdn {
        C::A => 0.80,
        C::B => 0.24,
        C::C => 0.30,
        C::D => 0.18,
        C::E => 0.14,
        C::Minor(_) => 0.012,
    }
}

/// Per-CDN traffic weight trend (Fig 11(b)): A's view-hour dominance erodes
/// while B and C grow to comparable shares.
pub fn cdn_traffic_weight(cdn: vmp_core::cdn::CdnName) -> Trend {
    use vmp_core::cdn::CdnName as C;
    match cdn {
        C::A => Trend::Linear { start: 1.60, end: 0.80 },
        C::B => Trend::Linear { start: 0.45, end: 1.25 },
        C::C => Trend::Linear { start: 0.60, end: 0.85 },
        C::D => Trend::Constant(0.30),
        C::E => Trend::Constant(0.22),
        C::Minor(_) => Trend::Constant(0.08),
    }
}

/// Number of CDNs by normalized size at study progress `t` (Fig 12(b)/(c):
/// smallest publishers use 1; >10⁵X publishers use 4–5; weighted average
/// ≈4.5 at the end while the plain average only just exceeds 2).
pub fn cdn_count(size01: f64, t: f64, jitter: f64) -> usize {
    let growth = 0.75 + 0.25 * t;
    let raw = 0.9 + size01.powf(2.2) * 5.3 * growth + jitter;
    (raw.floor() as usize).clamp(1, 5)
}

/// §4.3 segregation probabilities among multi-CDN live+VoD publishers:
/// 30% keep at least one VoD-only CDN, 19% at least one live-only CDN.
pub const VOD_ONLY_CDN_PROB: f64 = 0.24;
/// See [`VOD_ONLY_CDN_PROB`].
pub const LIVE_ONLY_CDN_PROB: f64 = 0.34;

/// SDK-version window growth: versions of one SDK a publisher must support,
/// as a function of size (decades above X). Together with the device count
/// this produces the §5 *unique SDKs* slope of ≈1.8× per decade (max ≈85
/// code bases for the largest publishers).
pub fn sdk_versions_per_kind(size_decades: f64, jitter: f64) -> usize {
    let raw = 1.0 + 0.92 * size_decades.max(0.0) + jitter;
    (raw.floor() as usize).clamp(1, 8)
}

/// Catalogue size (distinct video titles) by view-hours: `titles ∝ VH^0.55`
/// gives the §5 protocol-titles slope of ≈3.8× per decade once multiplied
/// by the protocol count.
pub fn title_count(vh_day: f64) -> u64 {
    let titles = 3.0 * (vh_day / X_VIEW_HOURS).max(0.01).powf(0.55);
    (titles.round() as u64).clamp(1, 200_000)
}

/// Number of large "DASH-first" publishers (the paper's unnamed `N`).
pub const DASH_FIRST_PUBLISHERS: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_bucket_weights_sum_to_one() {
        let sum: f64 = SIZE_BUCKET_WEIGHTS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn protocol_support_endpoints_match_fig2a() {
        let last = 1.0;
        assert!((protocol_support(StreamingProtocol::Hls).at(last) - 0.91).abs() < 0.01);
        // The raw curve tops out above the paper's 43% because the
        // size-leverage multiplier (mean < 1 over the population) brings
        // the composed support back down to Fig 2(a)'s level.
        let dash_end = protocol_support(StreamingProtocol::Dash).at(last);
        assert!((0.45..=0.60).contains(&dash_end), "dash end {dash_end}");
        let mean_boost = protocol_size_boost(0.45);
        assert!((0.34..=0.52).contains(&(dash_end * mean_boost)), "composed {}", dash_end * mean_boost);
        let dash_start = protocol_support(StreamingProtocol::Dash).at(0.0);
        assert!(dash_start < 0.15, "dash start {dash_start}");
        assert!((protocol_support(StreamingProtocol::Hds).at(last) - 0.19).abs() < 0.01);
    }

    #[test]
    fn apple_devices_only_weight_hls() {
        use vmp_core::device::DeviceModel as D;
        for d in [D::IPhone, D::IPad, D::AppleTv] {
            for p in StreamingProtocol::ALL {
                let w = device_protocol_weight(d, p);
                if p == StreamingProtocol::Hls {
                    assert!(w > 0.0);
                } else {
                    assert_eq!(w, 0.0);
                }
            }
        }
    }

    #[test]
    fn every_device_can_play_something() {
        for d in vmp_core::device::DeviceModel::ALL {
            let total: f64 = StreamingProtocol::ALL
                .iter()
                .map(|p| device_protocol_weight(d, *p))
                .sum();
            assert!(total > 0.0, "{d} cannot play anything");
        }
    }

    #[test]
    fn duration_models_encode_fig8() {
        // P(duration > 0.2h) via the lognormal CDF: median m, spread s →
        // z = ln(0.2/m)/ln(s); P = 1 - Φ(z).
        let p_over = |platform: Platform| {
            let (m, s) = duration_model(platform);
            let z = (0.2f64 / m).ln() / s.ln();
            1.0 - vmp_stats::special::std_normal_cdf(z)
        };
        let settop = p_over(Platform::SetTopBox);
        let mobile = p_over(Platform::MobileApp);
        let browser = p_over(Platform::Browser);
        assert!(settop > 0.60, "set-top P(>0.2h) = {settop}");
        assert!((0.15..0.32).contains(&mobile), "mobile P(>0.2h) = {mobile}");
        assert!((0.15..0.35).contains(&browser), "browser P(>0.2h) = {browser}");
    }

    #[test]
    fn cdn_counts_match_fig12_extremes() {
        // Smallest publishers: single CDN regardless of time.
        assert_eq!(cdn_count(0.0, 0.0, 0.0), 1);
        assert_eq!(cdn_count(0.0, 1.0, 0.0), 1);
        // Largest publishers end with 4–5.
        assert!(cdn_count(1.0, 1.0, 0.0) >= 4);
        assert!(cdn_count(1.0, 1.0, 0.4) == 5);
    }

    #[test]
    fn sdk_windows_hit_85_codebases_at_the_top() {
        // Largest publisher: ~14 SDK kinds × window ≈ 5-6 → ≈85.
        let window = sdk_versions_per_kind(5.5, 0.5);
        assert!((5..=8).contains(&window), "window {window}");
    }

    #[test]
    fn title_count_slope_is_sublinear() {
        let t1 = title_count(1_000.0) as f64;
        let t2 = title_count(10_000.0) as f64;
        let ratio = t2 / t1;
        assert!((3.0..4.5).contains(&ratio), "per-decade title growth {ratio}");
    }

    #[test]
    fn platform_view_shares_normalize_roughly() {
        for t in [0.0, 0.5, 1.0] {
            let sum: f64 = Platform::ALL
                .iter()
                .map(|p| platform_view_share(*p).at(t))
                .sum();
            // Weights are renormalized per publisher over its supported
            // platforms, so only rough normalization matters here.
            assert!((0.85..1.15).contains(&sum), "t={t} sum={sum}");
        }
    }
}

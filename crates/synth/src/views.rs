//! Weighted view-sample generation for one (publisher, snapshot) cell.
//!
//! Each cell generates `n` sampled views stratified to the publisher's
//! management plane at that snapshot, then weights them so the weighted sum
//! of view-hours equals the publisher's target for the two-day window
//! (Horvitz–Thompson; see `vmp_core::view::SampledView`). Every sample runs
//! a short real playback session (ABR + Markov network + broker-selected
//! CDN) so QoE fields come from the simulated data path, not a formula.

use vmp_abr::algorithm::{AbrAlgorithm, Bba, Bola, ThroughputRule};
use vmp_abr::network::{NetworkModel, NetworkProfile};
use vmp_cdn::broker::{Broker, BrokerPolicy};
use vmp_core::cdn::CdnName;
use vmp_core::content::ContentClass;
use vmp_core::device::DeviceModel;
use vmp_core::geo::{ConnectionType, Isp, Region};
use vmp_core::ids::{SessionId, VideoId};
use vmp_core::platform::{BrowserTech, Platform};
use vmp_core::protocol::StreamingProtocol;
use vmp_core::publisher::SyndicationRole;
use vmp_core::sdk::SdkVersion;
use vmp_core::time::SnapshotId;
use vmp_core::units::Seconds;
use vmp_core::view::{OwnershipFlag, SampledView};
use vmp_faults::{FaultInjector, FaultProfile, RetryPolicy};
use vmp_session::player::{PlaybackConfig, Player};
use vmp_session::telemetry::{ClientContext, TelemetryBuilder};
use vmp_stats::{Discrete, Distribution, LogNormal, Rng, Zipf};

use crate::publisher_gen::{PublisherProfile, SnapshotPlane};
use crate::syndigraph::SyndicationGraph;
use crate::trends;

/// View-sampling configuration.
#[derive(Debug, Clone)]
pub struct ViewGenConfig {
    /// Minimum samples per (publisher, snapshot).
    pub min_samples: usize,
    /// Maximum samples per (publisher, snapshot).
    pub max_samples: usize,
    /// Cap on simulated media per session (QoE is measured on this prefix
    /// and extrapolated; the *recorded* viewing time is the full duration).
    pub sim_media_cap: Seconds,
    /// Deterministic fault plan replayed under every cell, if any. Sessions
    /// get staggered start offsets across the plan's horizon and run with
    /// [`RetryPolicy::resilient`]; `None` reproduces the fault-free
    /// generation byte for byte.
    pub faults: Option<FaultProfile>,
    /// View-volume multiplier (`repro --scale N`). Applied to the per-cell
    /// sample count *after* the min/max clamp, so `1` reproduces the
    /// default generation byte for byte; the Horvitz–Thompson weights
    /// shrink in proportion, keeping weighted aggregates on target.
    pub volume_scale: u64,
}

impl Default for ViewGenConfig {
    fn default() -> Self {
        ViewGenConfig {
            min_samples: 40,
            max_samples: 700,
            sim_media_cap: Seconds(36.0),
            faults: None,
            volume_scale: 1,
        }
    }
}

/// Generates the weighted samples for one publisher at one snapshot.
#[allow(clippy::too_many_arguments)]
pub fn generate_views(
    profile: &PublisherProfile,
    plane: &SnapshotPlane,
    graph: &SyndicationGraph,
    cfg: &ViewGenConfig,
    snapshot: SnapshotId,
    session_base: u32,
    rng: &mut Rng,
) -> Vec<SampledView> {
    let t = snapshot.progress();
    // Two-day window target view-hours.
    let target_vh = plane.vh_day * 2.0;
    let n = ((plane.vh_day / trends::X_VIEW_HOURS).powf(0.45) * 30.0) as usize;
    let n = n.clamp(cfg.min_samples, cfg.max_samples) * cfg.volume_scale.max(1) as usize;

    let platform_dist = Discrete::new_or_unit(&plane.platform_weights);
    let title_dist =
        Zipf::new(plane.titles.clamp(1, 5_000) as usize, 0.8).unwrap_or_else(|_| Zipf::unit());
    let broker = Broker::new(BrokerPolicy::Weighted);
    let faults = cfg.faults.as_ref().map(|p| FaultInjector::new(p.clone()));

    let mut raw: Vec<(SampledView, f64)> = Vec::with_capacity(n);
    let mut total_hours = 0.0f64;

    for i in 0..n {
        let platform = plane.platforms[platform_dist.sample(rng)];
        let device = sample_device(platform, t, rng);
        let class = sample_class(profile, device, rng);
        let protocol = sample_protocol(plane, profile, device, t, rng);
        let cdn = broker
            .select(&plane.strategy, class, rng)
            .or_else(|| plane.strategy.cdns().first().copied())
            .unwrap_or(CdnName::A);

        // Duration (hours) from the per-platform model, floored at 30 s.
        let (median, spread) = trends::duration_model(platform);
        let duration_dist = LogNormal::clamped_median_spread(median, spread);
        let hours = duration_dist.sample(rng).clamp(30.0 / 3600.0, 6.0);
        let watch = Seconds::from_hours(hours);

        let region = sample_region(rng);
        let isp = *rng.choose(&Isp::ALL);
        let connection = sample_connection(platform, rng);

        // Real (truncated) playback for the QoE fields.
        let quality = cdn_quality(cdn, isp, t);
        let network = NetworkModel::new(
            NetworkProfile::for_connection(connection, 1.0).scaled(quality),
        );
        let sim_watch = Seconds(watch.0.min(cfg.sim_media_cap.0.max(6.0)));
        let content = Seconds(watch.0 * rng.range_f64(1.0, 2.5));
        let mut playback = match class {
            ContentClass::Vod => PlaybackConfig::vod(plane.ladder.clone(), content, sim_watch),
            ContentClass::Live => PlaybackConfig::live(plane.ladder.clone(), content, sim_watch),
        };
        if let Some(injector) = faults.as_ref() {
            playback.retry = RetryPolicy::resilient();
            // Stagger sessions across the plan's horizon so every incident
            // catches some views at startup and others mid-stream.
            playback.start_offset =
                Seconds(injector.profile().horizon().0 * (i as f64 / n as f64));
        }
        let abr = abr_for_device(device);
        let start_clock = playback.start_offset;
        // `vod`/`live` configs always validate; skip the view rather than
        // panic if that invariant ever breaks.
        let Ok(mut player) = Player::new(playback, network, abr.as_ref()) else {
            continue;
        };
        // Speculative wide-event trace: a no-op scope unless the run armed
        // `--session-trace`. Session ids match the telemetry rows below.
        let trace = vmp_session::hooks::trace_begin(
            session_base.wrapping_add(i as u32) as u64,
            Some(u64::from(profile.publisher.id.raw())),
            Some(cdn),
            None,
            start_clock,
        );
        let mut outcome = player.play_with(cdn, faults.as_ref(), rng);
        vmp_session::hooks::trace_finish(trace, &outcome);
        // Extrapolate the truncated QoE to the full view.
        if outcome.qoe.played.0 > 0.0 && watch.0 > outcome.qoe.played.0 {
            let scale = watch.0 / outcome.qoe.played.0;
            outcome.qoe.rebuffer_time = Seconds(outcome.qoe.rebuffer_time.0 * scale);
            outcome.qoe.played = watch;
        }

        // Ownership: syndicators serve licensed content most of the time.
        let ownership = sample_ownership(profile, graph, rng);
        let video_rank = title_dist.sample(rng) as u32;

        let token = format!("v{video_rank:06x}");
        let prefix = format!("p{:04}", profile.publisher.id.raw());
        let manifest_url = vmp_manifest::manifest_url(protocol, &cdn.host(), &prefix, &token);

        let client = ClientContext {
            device,
            sdk_version: sample_sdk_version(plane, rng),
            region,
            isp,
            connection,
        };
        let builder = TelemetryBuilder {
            session: SessionId::new(session_base.wrapping_add(i as u32)),
            snapshot,
            publisher: profile.publisher.id,
            video: VideoId::new(video_rank),
            manifest_url,
            available_bitrates: plane.ladder.bitrates(),
            class,
            ownership,
        };
        let mut record = builder.build(&client, &outcome);
        record.viewing_time = watch;

        total_hours += hours;
        raw.push((SampledView { record, weight: 0.0 }, hours));
    }

    // Weight so the weighted view-hours hit the target exactly.
    let weight = if total_hours > 0.0 { target_vh / total_hours } else { 0.0 };
    raw.into_iter()
        .map(|(mut s, _)| {
            s.weight = weight;
            s
        })
        .collect()
}

/// Per-(CDN, ISP, time) delivery quality factor. CDN A's edge degrades over
/// the study while B and C invest — the §4.3 traffic-share shift has a
/// performance story behind it. ISP X is the stronger access network
/// (Fig 15's "ISP X on CDN A" vs "ISP Y on CDN B" panels need both).
pub fn cdn_quality(cdn: CdnName, isp: Isp, t: f64) -> f64 {
    let cdn_factor = match cdn {
        CdnName::A => 1.15 - 0.25 * t,
        CdnName::B => 0.85 + 0.30 * t,
        CdnName::C => 1.00,
        CdnName::D => 0.80,
        CdnName::E => 0.75,
        CdnName::Minor(_) => 0.60,
    };
    let isp_factor = match isp {
        Isp::X => 1.10,
        Isp::Y => 0.90,
        Isp::Z => 1.00,
    };
    cdn_factor * isp_factor
}

fn sample_device(platform: Platform, t: f64, rng: &mut Rng) -> DeviceModel {
    match platform {
        Platform::Browser => {
            // 12% of browser views come from mobile browsers (§4.2 counts
            // them under the Browser platform).
            if rng.chance(0.12) {
                return DeviceModel::MobileBrowser;
            }
            let weights: Vec<f64> = BrowserTech::ALL
                .iter()
                .map(|tech| trends::browser_tech_share(*tech).at(t).max(0.0))
                .collect();
            let dist = Discrete::new_or_unit(&weights);
            DeviceModel::DesktopBrowser(BrowserTech::ALL[dist.sample(rng)])
        }
        Platform::MobileApp => {
            let android = rng.chance(trends::mobile_device_share(true).prob_at(t));
            let tablet = rng.chance(0.30);
            match (android, tablet) {
                (true, true) => DeviceModel::AndroidTablet,
                (true, false) => DeviceModel::AndroidPhone,
                (false, true) => DeviceModel::IPad,
                (false, false) => DeviceModel::IPhone,
            }
        }
        Platform::SetTopBox => {
            let devices =
                [DeviceModel::Roku, DeviceModel::AppleTv, DeviceModel::FireTv, DeviceModel::Chromecast];
            let weights: Vec<f64> =
                devices.iter().map(|d| trends::settop_device_share(*d).at(t).max(0.0)).collect();
            let dist = Discrete::new_or_unit(&weights);
            devices[dist.sample(rng)]
        }
        Platform::SmartTv => {
            let devices = [DeviceModel::SamsungTv, DeviceModel::LgTv, DeviceModel::VizioTv];
            let weights: Vec<f64> =
                devices.iter().map(|d| trends::smarttv_device_share(*d).at(t).max(0.0)).collect();
            let dist = Discrete::new_or_unit(&weights);
            devices[dist.sample(rng)]
        }
        Platform::GameConsole => {
            if rng.chance(0.6) {
                DeviceModel::Xbox
            } else {
                DeviceModel::PlayStation
            }
        }
    }
}

fn sample_class(profile: &PublisherProfile, device: DeviceModel, rng: &mut Rng) -> ContentClass {
    // Live skews toward large screens slightly.
    let base = profile.publisher.kind.live_share();
    let adjusted = if device.platform().is_large_screen() { base * 1.2 } else { base * 0.9 };
    if rng.chance(adjusted.min(0.95)) {
        ContentClass::Live
    } else {
        ContentClass::Vod
    }
}

fn sample_protocol(
    plane: &SnapshotPlane,
    profile: &PublisherProfile,
    device: DeviceModel,
    t: f64,
    rng: &mut Rng,
) -> StreamingProtocol {
    let mut weights = Vec::with_capacity(plane.protocols.len());
    for proto in &plane.protocols {
        let device_w = trends::device_protocol_weight(device, *proto);
        let pref = trends::protocol_preference(*proto, profile.dash_first, t);
        weights.push(device_w * pref);
    }
    match Discrete::new(&weights) {
        Ok(dist) => plane.protocols[dist.sample(rng)],
        // Device can't play anything the publisher packages (e.g. a
        // Silverlight view at a DASH/HLS-only publisher): fall back to the
        // publisher's primary protocol — never to a protocol outside its
        // management plane, which would corrupt the support analyses.
        Err(_) => plane.protocols.first().copied().unwrap_or(StreamingProtocol::Hls),
    }
}

fn sample_ownership(
    profile: &PublisherProfile,
    graph: &SyndicationGraph,
    rng: &mut Rng,
) -> OwnershipFlag {
    let p_syndicated = match profile.publisher.role {
        SyndicationRole::FullSyndicator => 0.75,
        SyndicationRole::Mixed => 0.35,
        SyndicationRole::OwnerOnly => 0.0,
    };
    if p_syndicated > 0.0 && rng.chance(p_syndicated) {
        if let Some(owner) = graph.sample_owner(profile.publisher.id, rng) {
            return OwnershipFlag::Syndicated { owner };
        }
    }
    OwnershipFlag::Owned
}

fn sample_region(rng: &mut Rng) -> Region {
    let dist = Discrete::new_or_unit(&[0.10, 0.38, 0.22, 0.15, 0.10, 0.05]);
    Region::ALL[dist.sample(rng)]
}

fn sample_connection(platform: Platform, rng: &mut Rng) -> ConnectionType {
    match platform {
        Platform::MobileApp => {
            if rng.chance(0.5) {
                ConnectionType::Cellular4g
            } else {
                ConnectionType::Wifi
            }
        }
        Platform::Browser => {
            if rng.chance(0.3) {
                ConnectionType::Wired
            } else {
                ConnectionType::Wifi
            }
        }
        _ => {
            if rng.chance(0.6) {
                ConnectionType::Wired
            } else {
                ConnectionType::Wifi
            }
        }
    }
}

fn sample_sdk_version(plane: &SnapshotPlane, rng: &mut Rng) -> SdkVersion {
    // Users lag: pick a version within the publisher's support window. Each
    // major release ships one maintained minor line, so the number of
    // distinct builds per SDK equals the support-window size (the §5
    // unique-SDKs unit).
    let major = 4 + (plane.snapshot.index() / 8) as u16;
    let lag = rng.below(plane.sdk_window as u64) as u16;
    let effective = major.saturating_sub(lag).max(1);
    SdkVersion::new(effective, effective % 3)
}

fn abr_for_device(device: DeviceModel) -> Box<dyn AbrAlgorithm> {
    // Different SDKs ship different adaptation logic (§2).
    match device {
        DeviceModel::IPhone | DeviceModel::IPad | DeviceModel::AppleTv => {
            Box::new(ThroughputRule { safety: 0.85 })
        }
        DeviceModel::Roku | DeviceModel::FireTv | DeviceModel::Chromecast => {
            Box::new(Bba::default())
        }
        DeviceModel::AndroidPhone | DeviceModel::AndroidTablet => Box::new(Bola::default()),
        _ => Box::new(ThroughputRule::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmp_core::ids::PublisherId;

    fn setup(seed: u64) -> (PublisherProfile, SnapshotPlane, SyndicationGraph) {
        let mut rng = Rng::seed_from(seed);
        let pop: Vec<PublisherProfile> = (0..30)
            .map(|i| PublisherProfile::generate(PublisherId::new(i), &mut rng))
            .collect();
        let graph = SyndicationGraph::generate(&pop, &mut rng);
        let profile = pop.into_iter().max_by(|a, b| a.vh_day_final.total_cmp(&b.vh_day_final)).unwrap();
        let plane = profile.plane(SnapshotId::LAST);
        (profile, plane, graph)
    }

    fn small_cfg() -> ViewGenConfig {
        ViewGenConfig {
            min_samples: 30,
            max_samples: 60,
            sim_media_cap: Seconds(12.0),
            faults: None,
            volume_scale: 1,
        }
    }

    #[test]
    fn weighted_hours_hit_the_target() {
        let (profile, plane, graph) = setup(1);
        let mut rng = Rng::seed_from(2);
        let views =
            generate_views(&profile, &plane, &graph, &small_cfg(), SnapshotId::LAST, 0, &mut rng);
        let total: f64 = views.iter().map(|v| v.weighted_hours()).sum();
        let target = plane.vh_day * 2.0;
        assert!((total / target - 1.0).abs() < 1e-9, "total {total}, target {target}");
    }

    #[test]
    fn views_respect_the_management_plane() {
        let (profile, plane, graph) = setup(3);
        let mut rng = Rng::seed_from(4);
        let views =
            generate_views(&profile, &plane, &graph, &small_cfg(), SnapshotId::LAST, 0, &mut rng);
        for v in &views {
            // Platform supported.
            assert!(plane.platforms.contains(&v.record.device.platform()));
            // CDN in strategy.
            let cdn_ids: Vec<_> = plane.strategy.cdns().iter().map(|c| c.id()).collect();
            assert!(cdn_ids.contains(&v.record.cdns[0]));
            // Protocol classifiable from the URL and (modulo the HLS
            // fallback) supported by the plane.
            let proto = vmp_manifest::classify(&v.record.manifest_url).expect("classifiable");
            assert!(
                plane.protocols.contains(&proto) || proto == StreamingProtocol::Hls,
                "unexpected protocol {proto}"
            );
            // Ladder advertised.
            assert_eq!(v.record.available_bitrates, plane.ladder.bitrates());
            assert!(v.record.viewing_time.0 >= 29.0);
        }
    }

    #[test]
    fn apple_views_are_hls() {
        let (profile, plane, graph) = setup(5);
        let mut rng = Rng::seed_from(6);
        let views =
            generate_views(&profile, &plane, &graph, &small_cfg(), SnapshotId::LAST, 0, &mut rng);
        for v in views.iter().filter(|v| v.record.device.hls_only()) {
            assert_eq!(
                vmp_manifest::classify(&v.record.manifest_url),
                Some(StreamingProtocol::Hls)
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (profile, plane, graph) = setup(7);
        let mut rng1 = Rng::seed_from(8);
        let mut rng2 = Rng::seed_from(8);
        let a = generate_views(&profile, &plane, &graph, &small_cfg(), SnapshotId::LAST, 0, &mut rng1);
        let b = generate_views(&profile, &plane, &graph, &small_cfg(), SnapshotId::LAST, 0, &mut rng2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.record, y.record);
        }
    }

    #[test]
    fn qoe_fields_are_populated() {
        let (profile, plane, graph) = setup(9);
        let mut rng = Rng::seed_from(10);
        let views =
            generate_views(&profile, &plane, &graph, &small_cfg(), SnapshotId::LAST, 0, &mut rng);
        let with_bitrate = views.iter().filter(|v| v.record.qoe.avg_bitrate.0 > 0).count();
        assert!(with_bitrate as f64 / views.len() as f64 > 0.95);
        for v in &views {
            let ratio = v.record.qoe.rebuffer_ratio();
            assert!((0.0..=1.0).contains(&ratio));
        }
    }

    #[test]
    fn faulted_generation_is_deterministic_and_degrades_qoe() {
        let (profile, plane, graph) = setup(11);
        // Brown out the publisher's primary CDN across the whole horizon.
        let victim = plane.strategy.cdns()[0];
        let faulted = ViewGenConfig {
            faults: Some(FaultProfile::cdn_brownout(victim)),
            ..small_cfg()
        };
        let gen = |cfg: &ViewGenConfig, seed: u64| {
            let mut rng = Rng::seed_from(seed);
            generate_views(&profile, &plane, &graph, cfg, SnapshotId::LAST, 0, &mut rng)
        };
        let a = gen(&faulted, 12);
        let b = gen(&faulted, 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.record, y.record);
        }
        let clean = gen(&small_cfg(), 12);
        // Rebuffer ratios are not comparable across the arms (armed timeouts
        // trade stalls for degraded bitrate, and fatal views barely play),
        // but delivered bitrate must suffer: retries refetch at the lowest
        // rung and outage-window views exit with nothing delivered.
        let bitrate = |views: &[SampledView]| {
            views.iter().map(|v| v.record.qoe.avg_bitrate.0 as f64).sum::<f64>()
                / views.len() as f64
        };
        assert!(
            bitrate(&a) < bitrate(&clean),
            "brownout should cut delivered bitrate: {} vs {}",
            bitrate(&a),
            bitrate(&clean)
        );
    }

    #[test]
    fn cdn_quality_table_shape() {
        // A degrades, B improves.
        assert!(cdn_quality(CdnName::A, Isp::Z, 0.0) > cdn_quality(CdnName::A, Isp::Z, 1.0));
        assert!(cdn_quality(CdnName::B, Isp::Z, 1.0) > cdn_quality(CdnName::B, Isp::Z, 0.0));
        // ISP X beats ISP Y on the same CDN.
        assert!(cdn_quality(CdnName::C, Isp::X, 0.5) > cdn_quality(CdnName::C, Isp::Y, 0.5));
        // Minors are worst.
        assert!(cdn_quality(CdnName::Minor(0), Isp::Z, 0.5) < cdn_quality(CdnName::E, Isp::Z, 0.5));
    }
}

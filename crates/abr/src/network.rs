//! Markov-modulated access-network bandwidth models.
//!
//! Each client connection is a three-state Markov chain (congested /
//! nominal / good). The chain steps once per chunk download; within a state,
//! throughput is lognormal around the state's median. Profiles are
//! parameterized by connection type (§6 compares like-for-like WiFi/4G/
//! wired) and an ISP×CDN quality factor so the same model family can
//! express the paper's "ISP X on CDN A" vs "ISP Y on CDN B" scenarios.

use vmp_core::geo::ConnectionType;
use vmp_core::units::{Kbps, Seconds};
use vmp_stats::{Distribution, LogNormal, Rng};

/// The hidden congestion state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Congested,
    Nominal,
    Good,
}

/// A parameterized bandwidth profile.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Median throughput per state, kbps.
    medians: [f64; 3],
    /// Multiplicative spread of the lognormal within a state.
    spread: f64,
    /// Row-stochastic transition matrix (per chunk step).
    transitions: [[f64; 3]; 3],
    /// Base round-trip time.
    pub rtt: Seconds,
}

impl NetworkProfile {
    /// Profile for a connection type with a quality multiplier
    /// (1.0 = nominal; the §6 ISP×CDN pairs use 0.5–1.5).
    pub fn for_connection(conn: ConnectionType, quality: f64) -> NetworkProfile {
        assert!(quality > 0.0 && quality.is_finite(), "quality must be positive");
        let (base, spread, rtt_ms, stickiness) = match conn {
            // (nominal median kbps, spread, RTT ms, same-state prob)
            ConnectionType::Wifi => (9_000.0, 1.8, 30.0, 0.80),
            ConnectionType::Cellular4g => (5_000.0, 2.2, 60.0, 0.65),
            ConnectionType::Wired => (16_000.0, 1.4, 20.0, 0.90),
        };
        let rest = (1.0 - stickiness) / 2.0;
        NetworkProfile {
            medians: [base * quality * 0.25, base * quality, base * quality * 2.0],
            spread,
            transitions: [
                [stickiness, 1.0 - stickiness, 0.0],
                [rest, stickiness, rest],
                [0.0, 1.0 - stickiness, stickiness],
            ],
            rtt: Seconds(rtt_ms / 1000.0),
        }
    }

    /// Scales the whole profile's throughput (CDN quality factor).
    pub fn scaled(mut self, factor: f64) -> NetworkProfile {
        assert!(factor > 0.0 && factor.is_finite());
        for m in &mut self.medians {
            *m *= factor;
        }
        self
    }
}

/// A live bandwidth process for one session.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    profile: NetworkProfile,
    state: State,
    samplers: [LogNormal; 3],
}

impl NetworkModel {
    /// Starts a session's bandwidth process in the nominal state.
    pub fn new(profile: NetworkProfile) -> NetworkModel {
        let samplers = profile
            .medians
            .map(|m| LogNormal::clamped_median_spread(m.max(1.0), profile.spread));
        NetworkModel { profile, state: State::Nominal, samplers }
    }

    /// Advances the chain one step and samples the throughput available for
    /// the next chunk download.
    pub fn next_throughput(&mut self, rng: &mut Rng) -> Kbps {
        let [congested_row, nominal_row, good_row] = self.profile.transitions;
        let [to_congested, to_nominal, _] = match self.state {
            State::Congested => congested_row,
            State::Nominal => nominal_row,
            State::Good => good_row,
        };
        let u = rng.f64();
        self.state = if u < to_congested {
            State::Congested
        } else if u < to_congested + to_nominal {
            State::Nominal
        } else {
            State::Good
        };
        let [congested, nominal, good] = &self.samplers;
        let sampler = match self.state {
            State::Congested => congested,
            State::Nominal => nominal,
            State::Good => good,
        };
        let sample = sampler.sample(rng).max(50.0);
        Kbps(sample as u32)
    }

    /// Round-trip time to the edge (jittered ±30%).
    pub fn rtt(&self, rng: &mut Rng) -> Seconds {
        Seconds(self.profile.rtt.0 * rng.range_f64(0.7, 1.3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_throughput(conn: ConnectionType, quality: f64, seed: u64) -> f64 {
        let mut model = NetworkModel::new(NetworkProfile::for_connection(conn, quality));
        let mut rng = Rng::seed_from(seed);
        (0..5000).map(|_| model.next_throughput(&mut rng).0 as f64).sum::<f64>() / 5000.0
    }

    #[test]
    fn wired_beats_wifi_beats_cellular_in_stability() {
        // Mean ordering (wired > wifi > 4g at equal quality).
        let wired = mean_throughput(ConnectionType::Wired, 1.0, 1);
        let wifi = mean_throughput(ConnectionType::Wifi, 1.0, 1);
        let cell = mean_throughput(ConnectionType::Cellular4g, 1.0, 1);
        assert!(wired > wifi, "wired {wired} vs wifi {wifi}");
        assert!(wifi > cell, "wifi {wifi} vs cell {cell}");
    }

    #[test]
    fn quality_factor_scales_throughput() {
        let good = mean_throughput(ConnectionType::Wifi, 1.5, 2);
        let poor = mean_throughput(ConnectionType::Wifi, 0.5, 2);
        let ratio = good / poor;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn throughput_is_never_zero() {
        let mut model =
            NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Cellular4g, 0.1));
        let mut rng = Rng::seed_from(3);
        for _ in 0..2000 {
            assert!(model.next_throughput(&mut rng).0 >= 50);
        }
    }

    #[test]
    fn rtt_jitters_around_base() {
        let model = NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Wifi, 1.0));
        let mut rng = Rng::seed_from(4);
        for _ in 0..100 {
            let rtt = model.rtt(&mut rng).0;
            assert!((0.021..=0.039).contains(&rtt), "rtt {rtt}");
        }
    }

    #[test]
    fn chain_visits_all_states() {
        let mut model = NetworkModel::new(NetworkProfile::for_connection(ConnectionType::Wifi, 1.0));
        let mut rng = Rng::seed_from(5);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..5000 {
            let t = model.next_throughput(&mut rng).0 as f64;
            if t < 4000.0 {
                saw_low = true;
            }
            if t > 12_000.0 {
                saw_high = true;
            }
        }
        assert!(saw_low && saw_high);
    }

    #[test]
    fn scaled_profile() {
        let base = NetworkProfile::for_connection(ConnectionType::Wired, 1.0);
        let scaled = base.clone().scaled(0.5);
        assert!((scaled.medians[1] - base.medians[1] * 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn zero_quality_panics() {
        NetworkProfile::for_connection(ConnectionType::Wifi, 0.0);
    }
}

//! Throughput prediction from past chunk downloads.

use vmp_core::units::Kbps;
use std::collections::VecDeque;

/// A throughput predictor fed one observation per completed chunk.
pub trait ThroughputPredictor {
    /// Records an observed per-chunk throughput.
    fn observe(&mut self, throughput: Kbps);
    /// Current estimate, or `None` before any observation.
    fn estimate(&self) -> Option<Kbps>;
    /// Clears history (e.g. after a CDN switch).
    fn reset(&mut self);
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone)]
pub struct EwmaPredictor {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaPredictor {
    /// Creates an EWMA with smoothing `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> EwmaPredictor {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        EwmaPredictor { alpha, value: None }
    }
}

impl ThroughputPredictor for EwmaPredictor {
    fn observe(&mut self, throughput: Kbps) {
        let x = throughput.0 as f64;
        self.value = Some(match self.value {
            None => x,
            Some(v) => (1.0 - self.alpha) * v + self.alpha * x,
        });
    }

    fn estimate(&self) -> Option<Kbps> {
        self.value.map(|v| Kbps(v.max(0.0) as u32))
    }

    fn reset(&mut self) {
        self.value = None;
    }
}

/// Harmonic mean of the last `window` observations — robust to throughput
/// spikes, the standard estimator in rate-based ABR literature.
#[derive(Debug, Clone)]
pub struct HarmonicMeanPredictor {
    window: usize,
    history: VecDeque<f64>,
}

impl HarmonicMeanPredictor {
    /// Creates a predictor over the last `window ≥ 1` chunks.
    pub fn new(window: usize) -> HarmonicMeanPredictor {
        assert!(window >= 1, "window must be at least 1");
        HarmonicMeanPredictor { window, history: VecDeque::new() }
    }
}

impl ThroughputPredictor for HarmonicMeanPredictor {
    fn observe(&mut self, throughput: Kbps) {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back((throughput.0 as f64).max(1.0));
    }

    fn estimate(&self) -> Option<Kbps> {
        if self.history.is_empty() {
            return None;
        }
        let inv_sum: f64 = self.history.iter().map(|x| 1.0 / x).sum();
        Some(Kbps((self.history.len() as f64 / inv_sum) as u32))
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut p = EwmaPredictor::new(0.3);
        assert_eq!(p.estimate(), None);
        for _ in 0..100 {
            p.observe(Kbps(4000));
        }
        assert_eq!(p.estimate(), Some(Kbps(4000)));
        p.reset();
        assert_eq!(p.estimate(), None);
    }

    #[test]
    fn ewma_tracks_changes_gradually() {
        let mut p = EwmaPredictor::new(0.2);
        p.observe(Kbps(1000));
        p.observe(Kbps(5000));
        let e = p.estimate().unwrap().0;
        assert!(e > 1000 && e < 5000, "estimate {e}");
    }

    #[test]
    fn harmonic_mean_is_spike_robust() {
        let mut p = HarmonicMeanPredictor::new(5);
        for _ in 0..4 {
            p.observe(Kbps(1000));
        }
        p.observe(Kbps(100_000)); // spike
        let e = p.estimate().unwrap().0;
        // Harmonic mean stays close to 1000; arithmetic would be ~20800.
        assert!(e < 1300, "estimate {e}");
    }

    #[test]
    fn harmonic_window_slides() {
        let mut p = HarmonicMeanPredictor::new(2);
        p.observe(Kbps(1000));
        p.observe(Kbps(1000));
        p.observe(Kbps(9000));
        p.observe(Kbps(9000));
        assert_eq!(p.estimate(), Some(Kbps(9000)));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        EwmaPredictor::new(0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn bad_window_panics() {
        HarmonicMeanPredictor::new(0);
    }
}

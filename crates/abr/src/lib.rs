//! # vmp-abr — bitrate adaptation and access-network models
//!
//! The control plane the paper distinguishes from the management plane (§1):
//! given the ladder the management plane *chose*, the control plane picks a
//! bitrate per chunk based on network conditions. §6 shows that ladder
//! choices translate into QoE differences (Fig 15/16), so reproducing those
//! figures needs a working ABR loop over realistic bandwidth processes.
//!
//! * [`network`] — Markov-modulated bandwidth models per connection type
//!   (WiFi / 4G / wired) and ISP quality, with per-chunk throughput samples
//!   and RTTs.
//! * [`predict`] — throughput predictors (EWMA and harmonic mean), the two
//!   estimators classic rate-based ABR uses.
//! * [`algorithm`] — three ABR families from the paper's citations:
//!   rate-based with a safety factor, buffer-based (BBA-style), and a
//!   BOLA-style utility maximizer.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod network;
pub mod predict;

pub use algorithm::{AbrAlgorithm, AbrState, Bba, Bola, ThroughputRule};
pub use network::{NetworkModel, NetworkProfile};
pub use predict::{EwmaPredictor, HarmonicMeanPredictor, ThroughputPredictor};

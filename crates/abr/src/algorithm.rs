//! Bitrate adaptation algorithms.
//!
//! Three families from the literature the paper cites (§1/§2 reference
//! buffer-based, throughput-based and utility-based adaptation):
//!
//! * [`ThroughputRule`] — rate-based: pick the highest rung under
//!   `safety × predicted throughput`.
//! * [`Bba`] — buffer-based (BBA-style): map buffer occupancy linearly from
//!   a reservoir to a cushion onto the ladder.
//! * [`Bola`] — Lyapunov utility maximization (BOLA-style): maximize
//!   `(utility + γ) / chunk cost` where utility is log-relative bitrate.

use vmp_core::ladder::BitrateLadder;
use vmp_core::units::{Kbps, Seconds};

/// Player state visible to the ABR decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbrState {
    /// Current buffer occupancy.
    pub buffer: Seconds,
    /// Predicted throughput, if any downloads completed yet.
    pub predicted_throughput: Option<Kbps>,
    /// Bitrate of the previously downloaded chunk ([`Kbps::ZERO`] at start).
    pub last_bitrate: Kbps,
    /// Nominal chunk duration.
    pub chunk_duration: Seconds,
}

/// An adaptive bitrate algorithm: picks the next chunk's rung.
pub trait AbrAlgorithm: Send {
    /// Chooses the bitrate for the next chunk.
    fn choose(&self, ladder: &BitrateLadder, state: &AbrState) -> Kbps;
    /// Short name for telemetry.
    fn name(&self) -> &'static str;
}

/// Rate-based rule with a safety factor.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputRule {
    /// Fraction of predicted throughput to spend (0 < safety ≤ 1).
    pub safety: f64,
}

impl Default for ThroughputRule {
    fn default() -> Self {
        ThroughputRule { safety: 0.8 }
    }
}

impl AbrAlgorithm for ThroughputRule {
    fn choose(&self, ladder: &BitrateLadder, state: &AbrState) -> Kbps {
        match state.predicted_throughput {
            None => ladder.min().bitrate, // conservative start
            Some(t) => {
                let budget = Kbps((t.0 as f64 * self.safety) as u32);
                ladder.best_under(budget).bitrate
            }
        }
    }

    fn name(&self) -> &'static str {
        "throughput"
    }
}

/// Buffer-based algorithm (BBA-0 shape).
#[derive(Debug, Clone, Copy)]
pub struct Bba {
    /// Below this buffer level always pick the lowest rung.
    pub reservoir: Seconds,
    /// At this buffer level and above pick the highest rung.
    pub cushion: Seconds,
}

impl Default for Bba {
    fn default() -> Self {
        Bba { reservoir: Seconds(10.0), cushion: Seconds(40.0) }
    }
}

impl AbrAlgorithm for Bba {
    fn choose(&self, ladder: &BitrateLadder, state: &AbrState) -> Kbps {
        let rungs = ladder.rungs();
        if state.buffer.0 <= self.reservoir.0 {
            return rungs[0].bitrate;
        }
        if state.buffer.0 >= self.cushion.0 {
            return rungs[rungs.len() - 1].bitrate;
        }
        let span = (self.cushion.0 - self.reservoir.0).max(1e-9);
        let frac = (state.buffer.0 - self.reservoir.0) / span;
        let idx = (frac * (rungs.len() - 1) as f64).floor() as usize;
        rungs[idx.min(rungs.len() - 1)].bitrate
    }

    fn name(&self) -> &'static str {
        "bba"
    }
}

/// BOLA-style utility maximizer.
#[derive(Debug, Clone, Copy)]
pub struct Bola {
    /// Buffer target the control parameter is derived from.
    pub buffer_target: Seconds,
}

impl Default for Bola {
    fn default() -> Self {
        Bola { buffer_target: Seconds(25.0) }
    }
}

impl AbrAlgorithm for Bola {
    fn choose(&self, ladder: &BitrateLadder, state: &AbrState) -> Kbps {
        let rungs = ladder.rungs();
        let min_b = rungs[0].bitrate.0 as f64;
        // Utilities: log of bitrate relative to the lowest rung.
        let utilities: Vec<f64> =
            rungs.iter().map(|r| (r.bitrate.0 as f64 / min_b).ln()).collect();
        let max_utility = *utilities.last().expect("non-empty ladder");
        let chunk = state.chunk_duration.0.max(0.1);
        // Derive V and gamma so the highest rung is picked exactly at the
        // buffer target (standard BOLA-U parameterization).
        let gamma = 1.0;
        let v = (self.buffer_target.0 / chunk - 1.0).max(0.1) / (max_utility + gamma);
        let buffer_chunks = state.buffer.0 / chunk;
        let mut best = rungs[0].bitrate;
        let mut best_score = f64::MIN;
        for (rung, utility) in rungs.iter().zip(&utilities) {
            let score = (v * (utility + gamma) - buffer_chunks) / (rung.bitrate.0 as f64);
            if score > best_score {
                best_score = score;
                best = rung.bitrate;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "bola"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> BitrateLadder {
        BitrateLadder::from_bitrates(&[400, 800, 1600, 3200, 6400]).unwrap()
    }

    fn state(buffer: f64, throughput: Option<u32>) -> AbrState {
        AbrState {
            buffer: Seconds(buffer),
            predicted_throughput: throughput.map(Kbps),
            last_bitrate: Kbps(800),
            chunk_duration: Seconds(6.0),
        }
    }

    #[test]
    fn throughput_rule_respects_safety_margin() {
        let rule = ThroughputRule { safety: 0.8 };
        // 0.8 × 2500 = 2000 → best under is 1600.
        assert_eq!(rule.choose(&ladder(), &state(20.0, Some(2500))), Kbps(1600));
        // 0.8 × 10000 = 8000 → top rung.
        assert_eq!(rule.choose(&ladder(), &state(20.0, Some(10_000))), Kbps(6400));
        // Starved prediction → lowest rung.
        assert_eq!(rule.choose(&ladder(), &state(20.0, Some(300))), Kbps(400));
        // Cold start → lowest rung.
        assert_eq!(rule.choose(&ladder(), &state(0.0, None)), Kbps(400));
    }

    #[test]
    fn bba_maps_buffer_to_ladder_monotonically() {
        let bba = Bba::default();
        let l = ladder();
        let mut last = 0;
        for buffer in [0.0, 5.0, 12.0, 20.0, 28.0, 36.0, 45.0] {
            let b = bba.choose(&l, &state(buffer, Some(99_999))).0;
            assert!(b >= last, "not monotone at buffer {buffer}");
            last = b;
        }
        assert_eq!(bba.choose(&l, &state(0.0, None)), Kbps(400));
        assert_eq!(bba.choose(&l, &state(60.0, None)), Kbps(6400));
    }

    #[test]
    fn bba_ignores_throughput_entirely() {
        let bba = Bba::default();
        let l = ladder();
        assert_eq!(
            bba.choose(&l, &state(25.0, Some(100))),
            bba.choose(&l, &state(25.0, Some(100_000)))
        );
    }

    #[test]
    fn bola_increases_with_buffer() {
        let bola = Bola::default();
        let l = ladder();
        let low = bola.choose(&l, &state(2.0, None)).0;
        let mid = bola.choose(&l, &state(15.0, None)).0;
        let high = bola.choose(&l, &state(30.0, None)).0;
        assert!(low <= mid && mid <= high, "{low} {mid} {high}");
        // BOLA's V/γ trade-off may start one rung above the floor, but at a
        // near-empty buffer it must stay in the bottom of the ladder and at
        // the target it must reach the top.
        assert!(low <= 800, "low-buffer choice too aggressive: {low}");
        assert_eq!(high, 6400);
    }

    #[test]
    fn all_algorithms_stay_on_ladder() {
        let l = ladder();
        let valid = l.bitrates();
        let algos: Vec<Box<dyn AbrAlgorithm>> = vec![
            Box::new(ThroughputRule::default()),
            Box::new(Bba::default()),
            Box::new(Bola::default()),
        ];
        for algo in &algos {
            for buffer in [0.0, 10.0, 25.0, 50.0] {
                for tput in [None, Some(100), Some(3000), Some(50_000)] {
                    let choice = algo.choose(&l, &state(buffer, tput));
                    assert!(valid.contains(&choice), "{} off ladder: {choice}", algo.name());
                }
            }
        }
    }

    #[test]
    fn single_rung_ladder_is_trivial() {
        let l = BitrateLadder::from_bitrates(&[1200]).unwrap();
        assert_eq!(ThroughputRule::default().choose(&l, &state(0.0, Some(50))), Kbps(1200));
        assert_eq!(Bba::default().choose(&l, &state(50.0, None)), Kbps(1200));
        assert_eq!(Bola::default().choose(&l, &state(5.0, None)), Kbps(1200));
    }
}
